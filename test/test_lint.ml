(* Tests for the midrr-lint static-analysis pass: a bad-fixture corpus in
   which every rule must trigger, suppression/baseline mechanics, and a
   clean-repo assertion mirroring the `dune build @lint` gate. *)

module Rule = Midrr_lint.Rule
module Finding = Midrr_lint.Finding
module Config = Midrr_lint.Config
module Baseline = Midrr_lint.Baseline
module Driver = Midrr_lint.Driver

let hot_file = "lib/core/drr_engine.ml"
let floaty_file = "lib/flownet/maxmin.ml"
let plain_file = "lib/core/oracle.ml"

let lint ?config ~file source = Driver.lint_string ?config ~file source

let rules_of findings =
  List.map (fun (f : Finding.t) -> Rule.id f.rule) findings
  |> List.sort_uniq String.compare

let check_rules what expected findings =
  Alcotest.(check (list string)) what expected (rules_of findings)

(* --- R1: polymorphic primitives in hot-path modules -------------------- *)

let test_r1_compare () =
  check_rules "bare compare" [ "R1" ]
    (lint ~file:hot_file "let sorted xs = List.sort compare xs");
  check_rules "Stdlib.compare" [ "R1" ]
    (lint ~file:hot_file "let c a b = Stdlib.compare a b");
  check_rules "poly equality" [ "R1" ]
    (lint ~file:hot_file "let f t = t.size = 0");
  check_rules "poly disequality" [ "R1" ]
    (lint ~file:hot_file "let f a b = a <> b");
  check_rules "Hashtbl.hash" [ "R1" ]
    (lint ~file:hot_file "let h x = Hashtbl.hash x");
  check_rules "List.mem" [ "R1" ]
    (lint ~file:hot_file "let f x xs = List.mem x xs")

let test_r1_scope () =
  check_rules "not a hot-path module" []
    (lint ~file:plain_file "let sorted xs = List.sort compare xs");
  check_rules "typed comparator is fine" []
    (lint ~file:hot_file "let sorted xs = List.sort Int.compare xs");
  check_rules "Int.equal is fine" [] (lint ~file:hot_file "let f t = Int.equal t 0")

(* --- R2: catch-all exception handlers ----------------------------------- *)

let test_r2 () =
  check_rules "with _ ->" [ "R2" ]
    (lint ~file:plain_file "let f () = try g () with _ -> 0");
  check_rules "catch-all among cases" [ "R2" ]
    (lint ~file:plain_file
       "let f () = try g () with Not_found -> 1 | _ -> 0");
  check_rules "specific exception is fine" []
    (lint ~file:plain_file "let f () = try g () with Not_found -> 0");
  check_rules "named handler is fine (can reraise)" []
    (lint ~file:plain_file "let f () = try g () with e -> raise e")

(* --- R3: float equality on computed values ------------------------------ *)

let test_r3 () =
  check_rules "= float literal" [ "R3" ]
    (lint ~file:floaty_file "let f x = x = 0.0");
  check_rules "<> float literal" [ "R3" ]
    (lint ~file:floaty_file "let f x = x <> 1.5");
  check_rules "computed float operand" [ "R3" ]
    (lint ~file:floaty_file "let f a b c = (a +. b) = c");
  check_rules "Float module result" [ "R3" ]
    (lint ~file:floaty_file "let f a b = Float.abs a = b")

let test_r3_scope () =
  check_rules "int comparison is fine" []
    (lint ~file:floaty_file "let f x = x = 0");
  check_rules "only in flownet/stats" []
    (lint ~file:"lib/sim/link.ml" "let f x = x = 0.0");
  check_rules "Float.equal is the fix" []
    (lint ~file:floaty_file "let f x = Float.equal x 0.0")

(* --- R4: Obj.magic and warning suppressions ----------------------------- *)

let test_r4 () =
  check_rules "Obj.magic" [ "R4" ]
    (lint ~file:plain_file "let f x = Obj.magic x");
  check_rules "item warning attribute" [ "R4" ]
    (lint ~file:plain_file "let f x = x [@@ocaml.warning \"-32\"]");
  check_rules "floating warning attribute" [ "R4" ]
    (lint ~file:plain_file "[@@@warning \"-27\"]\nlet f x = x");
  check_rules "allowlisted file may suppress warnings" []
    (lint
       ~config:
         { Config.default with warning_allowlist = [ plain_file ] }
       ~file:plain_file "let f x = x [@@ocaml.warning \"-32\"]")

(* --- R5: top-level mutable state ---------------------------------------- *)

let test_r5 () =
  check_rules "top-level ref" [ "R5" ] (lint ~file:plain_file "let c = ref 0");
  check_rules "top-level Hashtbl" [ "R5" ]
    (lint ~file:plain_file "let tbl = Hashtbl.create 16");
  check_rules "top-level array literal" [ "R5" ]
    (lint ~file:plain_file "let xs = [| 1; 2 |]");
  check_rules "mutable state inside a record" [ "R5" ]
    (lint ~file:plain_file "let s = { tbl = Hashtbl.create 4 }");
  check_rules "nested module counts" [ "R5" ]
    (lint ~file:plain_file "module M = struct let c = ref 0 end")

let test_r5_scope () =
  check_rules "inside a function is fine" []
    (lint ~file:plain_file "let make () = ref 0");
  check_rules "Atomic is the domain-safe fix" []
    (lint ~file:plain_file "let c = Atomic.make 0");
  check_rules "empty array literal is immutable" []
    (lint ~file:plain_file "let xs = [||]")

let test_r5_domain_spawn () =
  check_rules "Domain.spawn outside lib/par" [ "R5" ]
    (lint ~file:plain_file
       "let f () = Domain.join (Domain.spawn (fun () -> 1))");
  check_rules "the executor layer may spawn" []
    (lint ~file:"lib/par/par.ml"
       "let f () = Domain.join (Domain.spawn (fun () -> 1))");
  check_rules "other Domain functions are fine" []
    (lint ~file:plain_file "let n () = Domain.recommended_domain_count ()");
  check_rules "allow attribute masks a justified spawn" []
    (lint ~file:plain_file
       "let f g = (Domain.spawn g [@midrr.lint.allow \"R5\"])")

(* --- R6: shared mutable capture in Par task closures --------------------- *)

let test_r6 () =
  check_rules "ref write in a task closure" [ "R6" ]
    (lint ~file:plain_file
       "let f total xs = Par.map (fun x -> total := !total + x) xs");
  check_rules "array write to a captured array" [ "R6" ]
    (lint ~file:plain_file
       "let f out = Par.run (Array.init 4 (fun i () -> out.(i) <- i))");
  check_rules "mutable-field write to a captured record" [ "R6" ]
    (lint ~file:plain_file
       "let f acc xs = Midrr_par.Par.map (fun x -> acc.count <- acc.count + \
        x) xs");
  check_rules "Hashtbl write to a captured table" [ "R6" ]
    (lint ~file:plain_file
       "let f tbl xs = Par.map (fun x -> Hashtbl.replace tbl x x) xs")

let test_r6_scope () =
  check_rules "closure-local state is fine" []
    (lint ~file:plain_file
       "let f xs = Par.map (fun x -> let c = ref 0 in c := x; !c) xs");
  check_rules "a named task function is out of syntactic reach" []
    (lint ~file:plain_file "let f xs = Par.map task xs");
  check_rules "reads of captured state are fine" []
    (lint ~file:plain_file "let f base xs = Par.map (fun x -> base + x) xs");
  check_rules "writes outside Par calls are not R6's business" []
    (lint ~file:plain_file "let f total x = total := !total + x");
  check_rules "match binders count as local" []
    (lint ~file:plain_file
       "let f xs = Par.map (fun x -> match x with Some c -> c := 1 | None -> \
        ()) xs");
  check_rules "allow attribute for provably disjoint writes" []
    (lint ~file:plain_file
       "let f out = Par.run (Array.init 4 (fun i () -> (out.(i) <- i) \
        [@midrr.lint.allow \"R6\"]))")

(* --- suppression mechanics ---------------------------------------------- *)

let test_allow_attribute () =
  check_rules "per-binding allow" []
    (lint ~file:plain_file "let c = ref 0 [@midrr.lint.allow \"R5\"]");
  check_rules "allow lists several rules" []
    (lint ~file:plain_file "let c = ref 0 [@midrr.lint.allow \"R1, R5\"]");
  check_rules "allow for the wrong rule does not mask" [ "R5" ]
    (lint ~file:plain_file "let c = ref 0 [@midrr.lint.allow \"R1\"]");
  check_rules "file-wide floating allow" []
    (lint ~file:hot_file
       "[@@@midrr.lint.allow \"R1\"]\nlet sorted xs = List.sort compare xs");
  check_rules "expression-scoped allow" []
    (lint ~file:floaty_file
       "let f sq = if ((sq = 0.0) [@midrr.lint.allow \"R3\"]) then 0 else 1")

let test_baseline_ratchet () =
  let source = "let a = ref 0\nlet b = ref 0" in
  let findings = lint ~file:plain_file source in
  Alcotest.(check int) "two R5 findings" 2 (List.length findings);
  let lines = String.split_on_char '\n' source |> Array.of_list in
  let with_keys =
    List.map
      (fun (f : Finding.t) ->
        (f, Baseline.key ~source_line:lines.(f.line - 1) f))
      findings
  in
  (* A baseline holding only the first site: the second stays fresh. *)
  let b1 = Baseline.of_keys [ snd (List.hd with_keys) ] in
  let fresh, baselined, stale = Baseline.apply b1 with_keys in
  Alcotest.(check int) "one absorbed" 1 baselined;
  Alcotest.(check int) "one fresh" 1 (List.length fresh);
  Alcotest.(check int) "no stale" 0 (List.length stale);
  (* Multiset semantics: identical line text needs one entry per site. *)
  let keys = List.map snd with_keys in
  Alcotest.(check bool) "same key (same normalized text)" true
    (match keys with
    | [ k1; k2 ] ->
        (* Different line numbers but identical normalized content would
           give different keys only through the text, which differs here
           (a vs b).  Check both absorb fully when both are baselined. *)
        let fresh, _, _ =
          Baseline.apply (Baseline.of_keys [ k1; k2 ]) with_keys
        in
        List.length fresh = 0
    | _ -> false);
  (* Ratchet: a stale entry is reported once the site is fixed. *)
  let _, _, stale =
    Baseline.apply (Baseline.of_keys [ "R5\tghost.ml\tlet g = ref 0" ]) with_keys
  in
  Alcotest.(check int) "stale entry surfaces" 1 (List.length stale)

let test_baseline_normalization () =
  Alcotest.(check string)
    "whitespace collapses" "let a = ref 0"
    (Baseline.normalize_line "  let   a =\tref 0  ");
  Alcotest.(check string)
    "CRLF line endings strip" "let a = ref 0"
    (Baseline.normalize_line "let a = ref 0\r");
  (* a CRLF checkout and a re-indented site still hit the same key *)
  let f =
    {
      Finding.rule = Rule.R5;
      file = plain_file;
      line = 1;
      col = 0;
      message = "top-level mutable state";
    }
  in
  Alcotest.(check string)
    "key survives CRLF + reindent"
    (Baseline.key ~source_line:"let a = ref 0" f)
    (Baseline.key ~source_line:"\tlet  a  =  ref 0\r" f)

let test_baseline_duplicates () =
  let source = "let a = ref 0" in
  let findings = lint ~file:plain_file source in
  let with_keys =
    List.map (fun (f : Finding.t) -> (f, Baseline.key ~source_line:source f))
      findings
  in
  let k = snd (List.hd with_keys) in
  (* multiset: a duplicated line only covers one site; the extra copy is
     stale, not silently pooled *)
  let fresh, absorbed, stale = Baseline.apply (Baseline.of_keys [ k; k ]) with_keys in
  Alcotest.(check int) "fresh" 0 (List.length fresh);
  Alcotest.(check int) "absorbed" 1 absorbed;
  Alcotest.(check (list (pair string int))) "extra copy is stale" [ (k, 1) ] stale

let test_baseline_deleted_file () =
  (* an entry pointing at a file that no longer exists matches nothing
     and must surface as stale — deleting the file does not launder the
     debt out of the ratchet silently *)
  let ghost = "R5\tlib/deleted/gone.ml\tlet g = ref 0" in
  let findings = lint ~file:plain_file "let a = ref 0" in
  let with_keys =
    List.map
      (fun (f : Finding.t) -> (f, Baseline.key ~source_line:"let a = ref 0" f))
      findings
  in
  let fresh, _, stale = Baseline.apply (Baseline.of_keys [ ghost ]) with_keys in
  Alcotest.(check int) "the live finding stays fresh" 1 (List.length fresh);
  Alcotest.(check (list (pair string int))) "ghost entry is stale"
    [ (ghost, 1) ] stale

let test_baseline_filter () =
  let keys =
    [
      "R5\tlib/a.ml\tlet a = ref 0";
      "R7\tlib/b.ml\tlet b = Some 1";
      "garbage-without-tabs";
    ]
  in
  Alcotest.(check (option string))
    "rule_of_key parses" (Some "R7")
    (Option.map Rule.id (Baseline.rule_of_key (List.nth keys 1)));
  Alcotest.(check (option string))
    "rule_of_key rejects garbage" None
    (Option.map Rule.id (Baseline.rule_of_key (List.nth keys 2)));
  (* filtering away R7 removes that entry from stale reporting: an
     untyped-only run cannot judge rules it did not execute *)
  let keep_untyped k =
    match Baseline.rule_of_key k with
    | Some (Rule.R7 | Rule.R8) -> false
    | Some _ | None -> true
  in
  let b = Baseline.filter keep_untyped (Baseline.of_keys keys) in
  let _, _, stale = Baseline.apply b [] in
  Alcotest.(check int) "R7 entry filtered out" 2 (List.length stale);
  Alcotest.(check bool) "the R7 key is gone" false
    (List.exists (fun (k, _) -> String.equal k (List.nth keys 1)) stale)

(* --- hot-path config scoping (path entries with basename fallback) ------ *)

let test_hot_path_scoping () =
  let to_str = function
    | Config.Hot_path -> "path"
    | Config.Hot_basename_deprecated -> "basename"
    | Config.Not_hot -> "not"
  in
  let check what expected file =
    Alcotest.(check string) what expected
      (to_str (Config.hot_path_match Config.default file))
  in
  check "path-scoped entry matches" "path" "lib/core/drr_engine.ml";
  check "interfaces too" "path" "lib/core/drr_engine.mli";
  check "other directories stay cold" "not" "lib/sim/link.ml";
  (* only bare (slash-free) legacy entries fall back to basename
     matching — hot for safety, with a driver warning so the entry gets
     path-scoped; a path entry must never widen to unrelated twins
     (lib/obs/metrics must not make a lib/core/metrics.ml hot) *)
  let bare = { Config.default with hot_path_modules = [ "drr_engine" ] } in
  Alcotest.(check string)
    "bare entry hits any directory" "basename"
    (to_str (Config.hot_path_match bare "lib/experiments/drr_engine.ml"));
  check "twin basename stays cold under a path-scoped entry" "not"
    "lib/experiments/drr_engine.ml";
  check "unrelated basename stays cold under a path entry" "not"
    "lib/experiments/sweep.ml";
  Alcotest.(check string)
    "module_path_of_file strips extension" "lib/core/drr_engine"
    (Config.module_path_of_file "lib/core/drr_engine.ml")

(* --- the real repo stays clean ------------------------------------------ *)

(* Under `dune runtest` the cwd is _build/default/test and the declared
   source-tree deps sit one level up; under `dune exec` from a checkout
   the repo root may be the cwd itself or further up. *)
let repo_root =
  let looks_like_root d =
    Sys.file_exists (Filename.concat d "lint.baseline")
    && Sys.file_exists (Filename.concat d "lib")
  in
  match List.find_opt looks_like_root [ ".."; "."; "../.."; "../../.." ] with
  | Some d -> d
  | None -> Alcotest.failf "cannot locate repo root from %s" (Sys.getcwd ())

let test_clean_repo () =
  let baseline =
    match Baseline.load (Filename.concat repo_root "lint.baseline") with
    | Ok b -> b
    | Error msg -> Alcotest.failf "cannot load lint.baseline: %s" msg
  in
  (* the committed baseline also carries typed-tier (R7/R8) entries; an
     untyped scan cannot judge those, so drop them as the CLI does *)
  let baseline =
    Baseline.filter
      (fun k ->
        match Baseline.rule_of_key k with
        | Some (Rule.R7 | Rule.R8) -> false
        | Some _ | None -> true)
      baseline
  in
  let report =
    Driver.scan ~root:repo_root ~dirs:[ "lib"; "bin"; "bench" ] ~baseline ()
  in
  List.iter
    (fun (file, msg) -> Alcotest.failf "unparseable %s: %s" file msg)
    report.parse_errors;
  (match report.findings with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "fresh finding: %s:%d [%s] %s (run dune build @lint)"
        f.file f.line (Rule.id f.rule) f.message);
  Alcotest.(check (list (pair string int))) "no stale baseline entries" []
    report.stale_baseline;
  if report.files_scanned < 100 then
    Alcotest.failf "suspiciously few files scanned: %d" report.files_scanned

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 triggers" `Quick test_r1_compare;
          Alcotest.test_case "R1 scope" `Quick test_r1_scope;
          Alcotest.test_case "R2 triggers" `Quick test_r2;
          Alcotest.test_case "R3 triggers" `Quick test_r3;
          Alcotest.test_case "R3 scope" `Quick test_r3_scope;
          Alcotest.test_case "R4 triggers" `Quick test_r4;
          Alcotest.test_case "R5 triggers" `Quick test_r5;
          Alcotest.test_case "R5 scope" `Quick test_r5_scope;
          Alcotest.test_case "R5 Domain.spawn" `Quick test_r5_domain_spawn;
          Alcotest.test_case "R6 triggers" `Quick test_r6;
          Alcotest.test_case "R6 scope" `Quick test_r6_scope;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "allow attribute" `Quick test_allow_attribute;
          Alcotest.test_case "baseline ratchet" `Quick test_baseline_ratchet;
          Alcotest.test_case "normalization" `Quick test_baseline_normalization;
          Alcotest.test_case "duplicate entries" `Quick test_baseline_duplicates;
          Alcotest.test_case "deleted-file entries" `Quick
            test_baseline_deleted_file;
          Alcotest.test_case "filter by rule" `Quick test_baseline_filter;
          Alcotest.test_case "hot-path scoping" `Quick test_hot_path_scoping;
        ] );
      ( "repo",
        [ Alcotest.test_case "clean under baseline" `Quick test_clean_repo ] );
    ]
