type t = R1 | R2 | R3 | R4 | R5 | R6

let all = [ R1; R2; R3; R4; R5; R6 ]

let id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"

let of_id = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | _ -> None

let title = function
  | R1 -> "polymorphic compare/equality in hot-path module"
  | R2 -> "catch-all exception handler"
  | R3 -> "float equality on computed values"
  | R4 -> "Obj.magic or warning suppression"
  | R5 -> "top-level mutable state / Domain.spawn outside lib/par"
  | R6 -> "shared mutable capture in a Par task closure"

let hint = function
  | R1 ->
      "use a typed comparator (Int.compare, Int.equal, Float.equal, \
       String.equal) instead of the polymorphic primitive"
  | R2 ->
      "match the specific exceptions you expect; a wildcard handler \
       swallows Out_of_memory, Stack_overflow and programming errors"
  | R3 ->
      "compare through an epsilon helper (Midrr_flownet.Feq) or, if exact \
       equality is intended, say so with [@midrr.lint.allow \"R3\"]"
  | R4 ->
      "remove Obj.magic / the warning suppression, or add the file to the \
       lint allowlist with a justification"
  | R5 ->
      "allocate the state inside a constructor function, use Atomic.t, or \
       annotate the binding with [@midrr.lint.allow \"R5\"] and a \
       domain-safety justification; for Domain.spawn, route parallelism \
       through Midrr_par.Par instead of spawning domains directly"
  | R6 ->
      "make each task write only through its own return value (Par merges \
       results positionally); if the shared write is provably disjoint or \
       synchronised, say so with [@midrr.lint.allow \"R6\"]"

let equal a b = String.equal (id a) (id b)
let compare a b = String.compare (id a) (id b)
