module Recorder = Midrr_obs.Recorder

type event = {
  time : float;
  iface : Midrr_core.Types.iface_id;
  flow : Midrr_core.Types.flow_id;
  bytes : int;
}

type t = Recorder.t

let create ?(capacity = 65536) () = Recorder.create ~capacity ()

let record t (e : event) =
  Recorder.record t ~time:e.time
    (Midrr_obs.Event.Complete { flow = e.flow; iface = e.iface; bytes = e.bytes })

let attach t sim =
  Netsim.on_complete sim (fun ~time ~iface pkt ->
      record t { time; iface; flow = pkt.Midrr_core.Packet.flow; bytes = pkt.size })

let length = Recorder.length
let dropped = Recorder.dropped

(* Everything below folds directly over the ring buffer: no intermediate
   event list is built, whatever the buffer size. *)

let of_entry (e : Recorder.entry) =
  match e.event with
  | Midrr_obs.Event.Complete { flow; iface; bytes } ->
      Some { time = e.time; iface; flow; bytes }
  | _ -> None

let fold t ~init ~f =
  Recorder.fold t ~init ~f:(fun acc e ->
      match of_entry e with Some ev -> f acc ev | None -> acc)

let events t = List.rev (fold t ~init:[] ~f:(fun acc e -> e :: acc))

let between t ~t0 ~t1 =
  List.rev
    (fold t ~init:[] ~f:(fun acc e ->
         if e.time >= t0 && e.time < t1 then e :: acc else acc))

let tally key_of t =
  let acc = Hashtbl.create 16 in
  fold t ~init:() ~f:(fun () e ->
      let k = key_of e in
      Hashtbl.replace acc k
        (e.bytes + Option.value (Hashtbl.find_opt acc k) ~default:0));
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let bytes_per_flow t = tally (fun e -> e.flow) t

let bytes_per_iface t = tally (fun e -> e.iface) t

let interleaving t ~iface =
  fold t ~init:[] ~f:(fun acc e ->
      if e.iface <> iface then acc
      else
        match acc with
        | prev :: _ when prev = e.flow -> acc
        | _ -> e.flow :: acc)
  |> List.rev

let to_csv t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "time,iface,flow,bytes\n";
      fold t ~init:() ~f:(fun () e ->
          Printf.fprintf oc "%.9f,%d,%d,%d\n" e.time e.iface e.flow e.bytes))

let pp ppf t =
  Format.fprintf ppf "@[<v>%d events (%d dropped)@," (length t) (dropped t);
  fold t ~init:() ~f:(fun () e ->
      Format.fprintf ppf "%.6f iface=%d flow=%d %dB@," e.time e.iface e.flow
        e.bytes);
  Format.fprintf ppf "@]"
