type competitor = {
  quantum : float;
  max_pkt : float;
  arrival : Curve.t option;
}

let check_inputs name ~line_rate ~quantum ~max_pkt =
  if not (line_rate > 0.0) then invalid_arg (name ^ ": line_rate <= 0");
  if not (quantum > 0.0) then invalid_arg (name ^ ": quantum <= 0");
  if not (max_pkt > 0.0) then invalid_arg (name ^ ": max_pkt <= 0")

let largest_pkt ~max_pkt competitors =
  List.fold_left (fun acc c -> Float.max acc c.max_pkt) max_pkt competitors

let lap_residual ~line_rate ~quantum ~max_pkt ~deficit_cells ~competitors =
  check_inputs "Service.lap_residual" ~line_rate ~quantum ~max_pkt;
  if deficit_cells < 1 then
    invalid_arg "Service.lap_residual: deficit_cells < 1";
  let cross =
    List.fold_left (fun acc c -> acc +. c.quantum +. c.max_pkt) 0.0 competitors
  in
  let total = cross +. quantum +. max_pkt in
  let rate = line_rate *. quantum /. total in
  let latency =
    (cross
    +. (Float.of_int deficit_cells *. max_pkt)
    +. largest_pkt ~max_pkt competitors)
    /. line_rate
  in
  Curve.rate_latency ~rate ~latency

let blind_residual ~line_rate ~competitors =
  if not (line_rate > 0.0) then
    invalid_arg "Service.blind_residual: line_rate <= 0";
  let curves = List.map (fun c -> c.arrival) competitors in
  if List.exists Option.is_none curves then None
  else begin
    let cross = Arrival.aggregate (List.filter_map Fun.id curves) in
    let l_max = largest_pkt ~max_pkt:0.0 competitors in
    (* [C t - alpha_cross t - L]+ : the non-preemption term L covers a
       cross packet already in transmission when the flow's backlogged
       period starts.  With no competitors this degrades gracefully to
       the full line. *)
    let inner =
      Curve.sub (Curve.line ~rate:line_rate)
        (Curve.sum cross (Curve.affine ~burst:l_max ~rate:0.0))
    in
    Some (Curve.pos inner)
  end

let residual ~line_rate ~quantum ~max_pkt ~deficit_cells ~competitors =
  let lap =
    lap_residual ~line_rate ~quantum ~max_pkt ~deficit_cells ~competitors
  in
  match blind_residual ~line_rate ~competitors with
  | None -> lap
  | Some blind -> Curve.max_curve lap blind
