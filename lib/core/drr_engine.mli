(** The fast-path deficit-round-robin engine behind both DRR and miDRR.

    This is the default engine: flow and interface state live in dense
    slot arrays indexed by id, each interface's round is an intrusive
    {!Active_ring} threaded through the per-(flow, interface) link
    records, and [link_for] is a single array load — so a scheduling
    decision costs O(active flows), independent of how many idle flows
    are registered.  Flow and interface ids must be non-negative (they
    index the slot arrays directly; ids are expected to be small and
    dense).  Semantics are specified by {!Drr_engine_ref}, the original
    list-and-hashtable implementation kept as the executable spec; the
    differential and golden-trace suites hold the two engines to
    identical serve sequences, deficits, flags and event streams.

    The paper's Table 1 presents miDRR as classic DRR with one line changed:
    the "advance to the next backlogged flow" step additionally consults a
    per-(flow, interface) {e service flag} (Algorithm 3.2).  This module
    implements both variants behind one engine so the only difference
    between the baselines and miDRR in this repository is, as in the paper,
    the advancement rule.

    State per flow: quantum [Q_i = weight * base_quantum].  State per
    interface: a ring of backlogged eligible flows and a cursor [C_j].
    State per (flow, interface) pair: a deficit counter [DC_ij] and the
    one-bit service flag [SF_ij].  Deficits are per-interface because the
    paper has every interface "implementing DRR independently", with the
    service flag as the {e only} cross-interface coordination ("at most one
    bit of coordination signaling from each interface for every flow").

    Implements {!Sched_intf.S} plus introspection used by tests and the
    evaluation harness. *)

type mode =
  | Plain  (** naive per-interface DRR: no coordination between interfaces *)
  | Service_flags  (** miDRR: Algorithm 3.2's flag-skipping advancement *)

type flag_policy =
  | Per_turn
      (** set [SF_ik] when the flow is selected for a service turn — the
          normative reading of Algorithm 3.2 *)
  | Per_send
      (** additionally refresh [SF_ik] on every transmitted packet — the
          paper's §3.1 prose reading ("when interface k serves flow i");
          kept as an ablation: it trades over-service for under-service
          when interface capacities are very asymmetric *)

include Sched_intf.S

val next_packet_noalloc : t -> Types.iface_id -> Packet.t
(** Allocation-free {!next_packet}: returns {!Packet.none} (compare with
    {!Packet.is_none}) instead of [None] when the interface has nothing to
    send.  With no sink subscribed, a decision through this entry point
    allocates zero minor words — the property the bench harness gates on. *)

val create :
  ?base_quantum:int -> ?queue_capacity:int -> ?flag_policy:flag_policy ->
  ?counter_max:int -> mode -> t
(** [create mode] builds an empty scheduler.  [base_quantum] (bytes,
    default 1500) scales per-flow quanta: [Q_i = weight_i * base_quantum].
    [queue_capacity] bounds each flow queue in bytes (unbounded by
    default).  [flag_policy] defaults to [Per_turn].

    [counter_max] (default 1 = the paper's one-bit flag) generalizes the
    service flag to a saturating counter: serving a flow elsewhere
    increments the counter (up to [counter_max]) and each skip decrements
    it.  With [counter_max = 1], when {e every} flow of an interface is
    also served elsewhere, one advancement lap consumes all flags and the
    interface falls back to plain round robin among them — the published
    algorithm's behavior.  Larger counters let the interface keep skipping
    flows that are served elsewhere {e more often}, tracking the max-min
    allocation more closely on asymmetric topologies (see the flag-policy
    ablation in the bench harness). *)

val mode : t -> mode

val flag_policy : t -> flag_policy

val counter_max : t -> int

val base_quantum : t -> int

(** {1 Introspection} *)

val deficit : t -> Types.flow_id -> float
(** Largest per-interface deficit counter of the flow, in bytes. *)

val deficit_on : t -> flow:Types.flow_id -> iface:Types.iface_id -> float
(** The deficit counter [DC_ij] interface [iface] keeps for the flow; 0
    when the pair is not linked. *)

val quantum : t -> Types.flow_id -> float
(** Current quantum [Q_i] in bytes. *)

val service_flag : t -> flow:Types.flow_id -> iface:Types.iface_id -> bool
(** Whether [SF_ij] is raised.  [false] when the pair is not linked. *)

val service_counter : t -> flow:Types.flow_id -> iface:Types.iface_id -> int
(** The raw saturating counter behind [SF_ij]. *)

val turns : t -> Types.flow_id -> int
(** Number of service turns (quantum top-ups) the flow has received, summed
    over interfaces — the [m_i] of Lemma 4. *)

val turns_on : t -> flow:Types.flow_id -> iface:Types.iface_id -> int

val ring_flows : t -> Types.iface_id -> Types.flow_id list
(** Backlogged eligible flows in interface [j]'s round order, starting at
    the ring head. *)

val considered : t -> int
(** Total flows examined across all {!next_packet} calls — the search work
    that paper §6.3 profiles. *)

val reset_counters : t -> unit
(** Zero the service/turn/considered accounting (deficits and flags keep
    their values).  Used to start a measurement window. *)

val drops : t -> Types.flow_id -> int
(** Packets dropped by the flow's bounded queue. *)
