(** Fixed-bin histograms over floats. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [lo, hi) with [bins] equal-width bins plus
    underflow and overflow counters.  Requires [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit
(** Record one observation. *)

val add_many : t -> float array -> unit

val count : t -> int
(** Total observations recorded, including under/overflow. *)

val bin_count : t -> int -> int
(** Observations in bin [i] (0-based).  Raises [Invalid_argument] when out
    of range. *)

val underflow : t -> int
val overflow : t -> int

val nan_count : t -> int
(** NaN observations.  They count toward [count] but land in neither a
    bin nor the under/overflow cells. *)

val bin_edges : t -> int -> float * float
(** [bin_edges t i] is the half-open interval covered by bin [i]. *)

val bins : t -> int

val to_density : t -> (float * float) array
(** [(bin-midpoint, fraction-of-total)] for each bin, ignoring
    under/overflow. *)

val pp : Format.formatter -> t -> unit
(** Text rendering with proportional bars. *)
