(* Bounded SPSC ring.  Head and tail are monotonically increasing
   cursors (they never wrap; 63-bit ints outlive any run) and index the
   buffer modulo its power-of-two capacity.  The producer owns [tail]
   and a private cache of [head]; the consumer owns [head] and a private
   cache of [tail].  Each side refreshes its cache from the shared
   atomic only when the cached view says full/empty, so a steady-state
   push or pop performs exactly one shared-atomic store and no shared
   loads.  Publication safety: the producer's plain store into [buf] is
   ordered before its [Atomic.set tail], and the consumer reads [buf]
   only after an [Atomic.get tail] that observed the new cursor, so the
   non-atomic buffer accesses are race-free under the OCaml memory
   model.  The two cache fields live in the same record but are each
   written by exactly one domain — distinct locations, no race (false
   sharing only, which costs a cache miss on refresh, not correctness). *)

type 'a t = {
  buf : 'a array;
  mask : int;  (* capacity - 1; capacity is a power of two *)
  dummy : 'a;
  head : int Atomic.t;  (* next slot to pop; advanced by the consumer *)
  tail : int Atomic.t;  (* next slot to fill; advanced by the producer *)
  mutable head_cache : int;  (* producer-private view of [head] *)
  mutable tail_cache : int;  (* consumer-private view of [tail] *)
}

let create ~dummy capacity =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be > 0";
  if capacity > Sys.max_array_length / 2 then
    invalid_arg "Spsc.create: capacity too large";
  let rec round n = if n >= capacity then n else round (n * 2) in
  let cap = round 1 in
  {
    buf = Array.make cap dummy;
    mask = cap - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    head_cache = 0;
    tail_cache = 0;
  }

let capacity t = t.mask + 1

let length t =
  let n = Atomic.get t.tail - Atomic.get t.head in
  if n < 0 then 0 else n

let is_empty t = Atomic.get t.head >= Atomic.get t.tail

let try_push t x =
  let tl = Atomic.get t.tail in
  let cap = t.mask + 1 in
  if tl - t.head_cache >= cap then t.head_cache <- Atomic.get t.head;
  if tl - t.head_cache >= cap then false
  else begin
    t.buf.(tl land t.mask) <- x;
    Atomic.set t.tail (tl + 1);
    true
  end

let rec push t x = if not (try_push t x) then (Domain.cpu_relax (); push t x)

let try_pop t =
  let hd = Atomic.get t.head in
  if hd >= t.tail_cache then t.tail_cache <- Atomic.get t.tail;
  if hd >= t.tail_cache then t.dummy
  else begin
    let i = hd land t.mask in
    let x = t.buf.(i) in
    (* drop the ring's reference so popped elements are collectable *)
    t.buf.(i) <- t.dummy;
    Atomic.set t.head (hd + 1);
    x
  end

(* Correct because the dummy is never pushed (mli contract): try_pop
   returns it exactly when no element was consumed. *)
let rec pop t =
  let x = try_pop t in
  if x == t.dummy then (Domain.cpu_relax (); pop t) else x

(* Burst variants: same publication discipline, one shared-atomic store
   for the whole batch.  Cursor cache refresh happens at most once per
   call — when the cached view cannot satisfy the full request — so a
   k-element burst costs 1/k-th of the per-element cursor traffic. *)

let push_slice t src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length src then
    invalid_arg "Spsc.push_slice";
  let tl = Atomic.get t.tail in
  let cap = t.mask + 1 in
  if tl + len - t.head_cache > cap then t.head_cache <- Atomic.get t.head;
  let room = cap - (tl - t.head_cache) in
  let n = if len <= room then len else room in
  if n > 0 then begin
    for k = 0 to n - 1 do
      t.buf.((tl + k) land t.mask) <- src.(pos + k)
    done;
    Atomic.set t.tail (tl + n)
  end;
  n

let pop_slice t dst ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length dst then
    invalid_arg "Spsc.pop_slice";
  let hd = Atomic.get t.head in
  if hd + len > t.tail_cache then t.tail_cache <- Atomic.get t.tail;
  let avail = t.tail_cache - hd in
  let n = if len <= avail then len else avail in
  if n > 0 then begin
    for k = 0 to n - 1 do
      let i = (hd + k) land t.mask in
      dst.(pos + k) <- t.buf.(i);
      t.buf.(i) <- t.dummy
    done;
    Atomic.set t.head (hd + n)
  end;
  n

let pop_opt t =
  let x = try_pop t in
  if x == t.dummy then None else Some x
