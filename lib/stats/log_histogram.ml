(* HDR-style log-bucketed streaming histogram.  Bucket [i] covers the
   half-open interval [lo * gamma^i, lo * gamma^(i+1)); the index of a
   value is a log, a multiply and a truncation, so [observe] touches
   only preallocated int/float arrays and allocates nothing.  The
   boxed-float accumulators (sum / min / max) live in a 3-slot float
   array because OCaml stores float arrays unboxed: mutating a [float]
   record field would box a fresh float per observation. *)

let s_sum = 0
let s_max = 1
let s_min = 2

type t = {
  lo : float;
  gamma : float;
  log_lo : float;
  inv_log_gamma : float;
  counts : int array;
  stats : float array; (* [| sum; max; min |], unboxed *)
  mutable underflow : int; (* observations in [0, lo) and negatives *)
  mutable overflow : int;
  mutable nan : int; (* explicit cell: NaN is neither under- nor overflow *)
  mutable total : int; (* numeric observations (excludes [nan]) *)
}

let create ~lo ~gamma ~bins =
  if not (lo > 0.0) then invalid_arg "Log_histogram.create: lo <= 0";
  if not (gamma > 1.0) then invalid_arg "Log_histogram.create: gamma <= 1";
  if bins <= 0 then invalid_arg "Log_histogram.create: bins <= 0";
  {
    lo;
    gamma;
    log_lo = log lo;
    inv_log_gamma = 1.0 /. log gamma;
    counts = Array.make bins 0;
    stats = [| 0.0; Float.neg_infinity; Float.infinity |];
    underflow = 0;
    overflow = 0;
    nan = 0;
    total = 0;
  }

let create_range ~lo ~hi ~rel_error =
  if not (lo > 0.0 && hi > lo) then
    invalid_arg "Log_histogram.create_range: need 0 < lo < hi";
  if not (rel_error > 0.0) then
    invalid_arg "Log_histogram.create_range: rel_error <= 0";
  let gamma = 1.0 +. rel_error in
  let bins =
    int_of_float (Float.ceil (log (hi /. lo) /. log gamma)) |> Stdlib.max 1
  in
  create ~lo ~gamma ~bins

let observe t v =
  if Float.is_nan v then t.nan <- t.nan + 1
  else begin
    t.total <- t.total + 1;
    t.stats.(s_sum) <- t.stats.(s_sum) +. v;
    if v > t.stats.(s_max) then t.stats.(s_max) <- v;
    if v < t.stats.(s_min) then t.stats.(s_min) <- v;
    if v < t.lo then t.underflow <- t.underflow + 1
    else begin
      let i = int_of_float ((log v -. t.log_lo) *. t.inv_log_gamma) in
      if i >= Array.length t.counts then t.overflow <- t.overflow + 1
      else t.counts.(i) <- t.counts.(i) + 1
    end
  end

(* [observe t (Float.of_int ns *. 1e-9)], but with an [int] argument.
   The compiler (classic mode, no flambda) boxes float arguments at
   every function call, so a caller that *computes* a duration cannot
   reach [observe] allocation-free; an int crosses the boundary for
   free and the conversion below stays a local unboxed float.  The
   body duplicates [observe]'s numeric branch on purpose: delegating
   would reintroduce the boxed call. *)
let observe_ns t ns =
  let v = Float.of_int ns *. 1e-9 in
  t.total <- t.total + 1;
  t.stats.(s_sum) <- t.stats.(s_sum) +. v;
  if v > t.stats.(s_max) then t.stats.(s_max) <- v;
  if v < t.stats.(s_min) then t.stats.(s_min) <- v;
  if v < t.lo then t.underflow <- t.underflow + 1
  else begin
    let i = int_of_float ((log v -. t.log_lo) *. t.inv_log_gamma) in
    if i >= Array.length t.counts then t.overflow <- t.overflow + 1
    else t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total
let nan_count t = t.nan
let underflow t = t.underflow
let overflow t = t.overflow
let sum t = t.stats.(s_sum)
let max_value t = if Int.equal t.total 0 then Float.nan else t.stats.(s_max)
let min_value t = if Int.equal t.total 0 then Float.nan else t.stats.(s_min)

let mean t =
  if Int.equal t.total 0 then Float.nan
  else t.stats.(s_sum) /. Float.of_int t.total

let bins t = Array.length t.counts

let bucket_count t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Log_histogram.bucket_count: index out of range";
  t.counts.(i)

let bucket_edges t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Log_histogram.bucket_edges: index out of range";
  (t.lo *. (t.gamma ** Float.of_int i), t.lo *. (t.gamma ** Float.of_int (i + 1)))

(* Quantiles report the *upper* edge of the bucket holding the rank,
   clamped by the exact running max: the estimate is never below the
   true quantile (bound harnesses stay sound) and never above the true
   maximum.  Underflow ranks report [lo]; overflow ranks report the
   exact max. *)
let quantile t ~q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Log_histogram.quantile: q outside [0, 1]";
  if Int.equal t.total 0 then Float.nan
  else begin
    let rank =
      Stdlib.max 1
        (Stdlib.min t.total
           (int_of_float (Float.ceil (q *. Float.of_int t.total))))
    in
    let mx = t.stats.(s_max) in
    if rank <= t.underflow then Float.min t.lo mx
    else begin
      let acc = ref t.underflow in
      let result = ref mx (* overflow region: exact max *) in
      (try
         for i = 0 to Array.length t.counts - 1 do
           acc := !acc + t.counts.(i);
           if rank <= !acc then begin
             result :=
               Float.min (t.lo *. (t.gamma ** Float.of_int (i + 1))) mx;
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end
  end

let same_geometry a b =
  Float.equal a.lo b.lo && Float.equal a.gamma b.gamma
  && Int.equal (Array.length a.counts) (Array.length b.counts)

let merge_into ~src ~dst =
  if not (same_geometry src dst) then
    invalid_arg "Log_histogram.merge_into: geometry mismatch";
  for i = 0 to Array.length src.counts - 1 do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.underflow <- dst.underflow + src.underflow;
  dst.overflow <- dst.overflow + src.overflow;
  dst.nan <- dst.nan + src.nan;
  dst.total <- dst.total + src.total;
  dst.stats.(s_sum) <- dst.stats.(s_sum) +. src.stats.(s_sum);
  if src.stats.(s_max) > dst.stats.(s_max) then
    dst.stats.(s_max) <- src.stats.(s_max);
  if src.stats.(s_min) < dst.stats.(s_min) then
    dst.stats.(s_min) <- src.stats.(s_min)

let copy t =
  {
    t with
    counts = Array.copy t.counts;
    stats = Array.copy t.stats;
  }

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.stats.(s_sum) <- 0.0;
  t.stats.(s_max) <- Float.neg_infinity;
  t.stats.(s_min) <- Float.infinity;
  t.underflow <- 0;
  t.overflow <- 0;
  t.nan <- 0;
  t.total <- 0

let lo t = t.lo
let gamma t = t.gamma

let pp ppf t =
  Format.fprintf ppf
    "@[<v>log-histogram: %d obs (%d under, %d over, %d nan)@," t.total
    t.underflow t.overflow t.nan;
  if t.total > 0 then
    Format.fprintf ppf
      "min %.6g  mean %.6g  max %.6g@,p50 %.6g  p90 %.6g  p99 %.6g  p999 %.6g@,"
      (min_value t) (mean t) (max_value t) (quantile t ~q:0.5)
      (quantile t ~q:0.9) (quantile t ~q:0.99) (quantile t ~q:0.999);
  Format.fprintf ppf "@]"
