type addr = { mac : int64; ip : int32 }

let addr ~mac ~ip =
  if Int64.logand mac 0xFFFF_0000_0000_0000L <> 0L then
    invalid_arg "Vif.addr: MAC wider than 48 bits";
  { mac; ip }

type frame = {
  src : addr;
  dst : addr;
  payload : Midrr_core.Packet.t;
  checksum : int;
}

(* 16-bit ones'-complement sum over the header words, the way IPv4 header
   checksums are computed. *)
let header_checksum ~src ~dst ~payload_len =
  let words = ref [] in
  let push64 v =
    for shift = 0 to 3 do
      words :=
        Int64.to_int (Int64.logand (Int64.shift_right_logical v (16 * shift)) 0xFFFFL)
        :: !words
    done
  in
  let push32 v =
    words := Int32.to_int (Int32.logand v 0xFFFFl) :: !words;
    words :=
      Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xFFFFl)
      :: !words
  in
  push64 src.mac;
  push64 dst.mac;
  push32 src.ip;
  push32 dst.ip;
  words := payload_len land 0xFFFF :: !words;
  let sum =
    List.fold_left
      (fun acc w ->
        let s = acc + w in
        (s land 0xFFFF) + (s lsr 16))
      0 !words
  in
  lnot sum land 0xFFFF

let make ~src ~dst payload =
  {
    src;
    dst;
    payload;
    checksum =
      header_checksum ~src ~dst ~payload_len:payload.Midrr_core.Packet.size;
  }

let rewrite frame ~src ~dst =
  {
    frame with
    src;
    dst;
    checksum =
      header_checksum ~src ~dst
        ~payload_len:frame.payload.Midrr_core.Packet.size;
  }

let checksum_valid frame =
  frame.checksum
  = header_checksum ~src:frame.src ~dst:frame.dst
      ~payload_len:frame.payload.Midrr_core.Packet.size

let pp_addr ppf a = Format.fprintf ppf "%012Lx/%08lx" a.mac a.ip

let pp ppf f =
  Format.fprintf ppf "%a -> %a (%a, csum=%04x)" pp_addr f.src pp_addr f.dst
    Midrr_core.Packet.pp f.payload f.checksum
