(* Tests for the miDRR scheduler: the paper's worked examples, service-flag
   behavior, and the deficit/fairness bounds of Section 4. *)

open Midrr_core
module Netsim = Midrr_sim.Netsim
module Link = Midrr_sim.Link
module Maxmin = Midrr_flownet.Maxmin
module Cluster = Midrr_flownet.Cluster

let check_close ?(tol = 0.05) what expected got =
  if Float.abs (expected -. got) > tol *. Float.max 1.0 (Float.abs expected)
  then
    Alcotest.failf "%s: expected %.4f, got %.4f (tol %.3g)" what expected got
      tol

(* Run backlogged flows over interfaces for [horizon] seconds and return the
   measured steady-state rate of each flow in Mb/s, skipping the first
   [warmup] seconds. *)
let measure_rates ?(horizon = 30.0) ?(warmup = 5.0) ~sched ~ifaces ~flows () =
  let sim = Netsim.create ~bin:0.5 ~sched () in
  List.iter (fun (j, rate) -> Netsim.add_iface sim j (Link.constant rate)) ifaces;
  List.iter
    (fun (f, weight, allowed) ->
      Netsim.add_flow sim f ~weight ~allowed (Backlogged { pkt_size = 1000 }))
    flows;
  Netsim.run sim ~until:horizon;
  List.map
    (fun (f, _, _) -> (f, Netsim.avg_rate sim f ~t0:warmup ~t1:horizon))
    flows

(* --- Figure 1 golden cases --------------------------------------------- *)

(* Fig. 1(a): one 2 Mb/s interface, two equal flows -> 1 Mb/s each. *)
let test_fig1a () =
  let sched = Midrr.packed (Midrr.create ()) in
  let rates =
    measure_rates ~sched
      ~ifaces:[ (0, Types.mbps 2.0) ]
      ~flows:[ (0, 1.0, [ 0 ]); (1, 1.0, [ 0 ]) ]
      ()
  in
  List.iter (fun (f, r) -> check_close (Printf.sprintf "flow %d" f) 1.0 r) rates

(* Fig. 1(b): two 1 Mb/s interfaces, both flows willing to use both ->
   1 Mb/s each. *)
let test_fig1b () =
  let sched = Midrr.packed (Midrr.create ()) in
  let rates =
    measure_rates ~sched
      ~ifaces:[ (0, Types.mbps 1.0); (1, Types.mbps 1.0) ]
      ~flows:[ (0, 1.0, [ 0; 1 ]); (1, 1.0, [ 0; 1 ]) ]
      ()
  in
  List.iter (fun (f, r) -> check_close (Printf.sprintf "flow %d" f) 1.0 r) rates

(* Fig. 1(c): flow a may use both interfaces, flow b only interface 2.
   miDRR must find the max-min allocation of 1 Mb/s each (not WFQ's
   1.5 / 0.5 split). *)
let test_fig1c_midrr () =
  let sched = Midrr.packed (Midrr.create ()) in
  let rates =
    measure_rates ~sched
      ~ifaces:[ (0, Types.mbps 1.0); (1, Types.mbps 1.0) ]
      ~flows:[ (0, 1.0, [ 0; 1 ]); (1, 1.0, [ 1 ]) ]
      ()
  in
  List.iter (fun (f, r) -> check_close (Printf.sprintf "flow %d" f) 1.0 r) rates

(* Same topology under naive per-interface DRR: flow a should get ~1.5 and
   flow b ~0.5 — the failure the paper's introduction demonstrates. *)
let test_fig1c_naive_drr () =
  let sched = Drr.packed (Drr.create ()) in
  let rates =
    measure_rates ~sched
      ~ifaces:[ (0, Types.mbps 1.0); (1, Types.mbps 1.0) ]
      ~flows:[ (0, 1.0, [ 0; 1 ]); (1, 1.0, [ 1 ]) ]
      ()
  in
  check_close "flow a (naive)" 1.5 (List.assoc 0 rates);
  check_close "flow b (naive)" 0.5 (List.assoc 1 rates)

(* §1's infeasible rate preference: phi_b = 2 phi_a but b only uses
   interface 2.  Work conservation wins: both get 1 Mb/s. *)
let test_infeasible_rate_pref () =
  let sched = Midrr.packed (Midrr.create ()) in
  let rates =
    measure_rates ~sched
      ~ifaces:[ (0, Types.mbps 1.0); (1, Types.mbps 1.0) ]
      ~flows:[ (0, 1.0, [ 0; 1 ]); (1, 2.0, [ 1 ]) ]
      ()
  in
  check_close "flow a" 1.0 (List.assoc 0 rates);
  check_close "flow b" 1.0 (List.assoc 1 rates)

(* Weighted sharing on one interface: weights 1:2 -> 1/3 and 2/3. *)
let test_weighted_single_iface () =
  let sched = Midrr.packed (Midrr.create ()) in
  let rates =
    measure_rates ~sched
      ~ifaces:[ (0, Types.mbps 3.0) ]
      ~flows:[ (0, 1.0, [ 0 ]); (1, 2.0, [ 0 ]) ]
      ()
  in
  check_close "flow a" 1.0 (List.assoc 0 rates);
  check_close "flow b" 2.0 (List.assoc 1 rates)

(* --- Figure 6: the paper's 3-flow / 2-interface simulation -------------- *)

let fig6_sim () =
  let sched = Midrr.packed (Midrr.create ()) in
  let sim = Netsim.create ~bin:1.0 ~sched () in
  Netsim.add_iface sim 1 (Link.constant (Types.mbps 3.0));
  Netsim.add_iface sim 2 (Link.constant (Types.mbps 10.0));
  (* Sizes chosen so flow a completes near t=66 s (3 Mb/s * 66 s) and
     flow b near t=85 s (20/3 Mb/s * 66 s + 26/3 Mb/s * 19 s). *)
  let mb_to_bytes mb = int_of_float (mb *. 1e6 /. 8.0) in
  Netsim.add_flow sim 10 ~weight:1.0 ~allowed:[ 1 ]
    (Finite { total_bytes = mb_to_bytes 198.0; pkt_size = 1500 });
  Netsim.add_flow sim 11 ~weight:2.0 ~allowed:[ 1; 2 ]
    (Finite { total_bytes = mb_to_bytes 604.67; pkt_size = 1500 });
  Netsim.add_flow sim 12 ~weight:1.0 ~allowed:[ 2 ]
    (Backlogged { pkt_size = 1500 });
  Netsim.run sim ~until:100.0;
  sim

let test_fig6_phases () =
  let sim = fig6_sim () in
  (* Phase 1 (steady part): a=3, b=6.67, c=3.33. *)
  check_close "a phase1" 3.0 (Netsim.avg_rate sim 10 ~t0:10.0 ~t1:60.0);
  check_close "b phase1" 6.67 (Netsim.avg_rate sim 11 ~t0:10.0 ~t1:60.0);
  check_close "c phase1" 3.33 (Netsim.avg_rate sim 12 ~t0:10.0 ~t1:60.0);
  (* Completion times. *)
  (match Netsim.completion_time sim 10 with
  | Some t -> check_close ~tol:0.03 "a completion" 66.0 t
  | None -> Alcotest.fail "flow a never completed");
  (match Netsim.completion_time sim 11 with
  | Some t -> check_close ~tol:0.03 "b completion" 85.0 t
  | None -> Alcotest.fail "flow b never completed")

let test_fig6_phase2_and_3 () =
  let sim = fig6_sim () in
  let a_done = Option.get (Netsim.completion_time sim 10) in
  let b_done = Option.get (Netsim.completion_time sim 11) in
  (* Phase 2: b aggregates both interfaces at 8.67, c rises to 4.33. *)
  check_close "b phase2" 8.67
    (Netsim.avg_rate sim 11 ~t0:(a_done +. 2.0) ~t1:(b_done -. 2.0));
  check_close "c phase2" 4.33
    (Netsim.avg_rate sim 12 ~t0:(a_done +. 2.0) ~t1:(b_done -. 2.0));
  (* Phase 3: c alone on interface 2 at 10 Mb/s. *)
  check_close "c phase3" 10.0
    (Netsim.avg_rate sim 12 ~t0:(b_done +. 2.0) ~t1:99.0)

(* --- service flag mechanics -------------------------------------------- *)

(* In the Fig. 1(c) steady state, interface 1 serves only flow a, so flow
   a's flag at interface 2 should be repeatedly set. *)
let test_service_flags_separate_clusters () =
  let m = Midrr.create () in
  let sched = Midrr.packed m in
  let sim = Netsim.create ~sched () in
  Netsim.add_iface sim 0 (Link.constant (Types.mbps 1.0));
  Netsim.add_iface sim 1 (Link.constant (Types.mbps 1.0));
  Netsim.add_flow sim 0 ~weight:1.0 ~allowed:[ 0; 1 ]
    (Backlogged { pkt_size = 1000 });
  Netsim.add_flow sim 1 ~weight:1.0 ~allowed:[ 1 ]
    (Backlogged { pkt_size = 1000 });
  Netsim.run sim ~until:20.0;
  (* Steady state: interface 1 carries (nearly) only flow b. *)
  let a_on_1 = Netsim.served_cell sim ~flow:0 ~iface:1 in
  let b_on_1 = Netsim.served_cell sim ~flow:1 ~iface:1 in
  if a_on_1 * 10 > b_on_1 then
    Alcotest.failf "interface 1 served flow a too much: a=%dB b=%dB" a_on_1
      b_on_1;
  (* And flow a's service at interface 0 keeps the flag for (a, iface 1)
     set in steady state. *)
  Alcotest.(check bool)
    "flag(a, if1) set" true
    (Drr_engine.service_flag m ~flow:0 ~iface:1)

(* Deficit counter bound (Lemma 3): each interface runs its own DRR, so
   every per-link deficit counter DC_ij stays within
   [0, Q_i + MaxSize) at all times. *)
let test_deficit_bounds () =
  let m = Midrr.create ~base_quantum:1500 () in
  Drr_engine.add_iface m 0;
  Drr_engine.add_iface m 1;
  Drr_engine.add_flow m ~flow:0 ~weight:1.0 ~allowed:[ 0; 1 ];
  Drr_engine.add_flow m ~flow:1 ~weight:2.0 ~allowed:[ 1 ];
  Drr_engine.add_flow m ~flow:2 ~weight:1.0 ~allowed:[ 0 ];
  let rng = Midrr_stats.Rng.create ~seed:42 in
  for _ = 1 to 5000 do
    (* Random arrivals keep queues partially loaded. *)
    if Midrr_stats.Rng.bool rng then begin
      let flow = Midrr_stats.Rng.int rng ~bound:3 in
      let size = 64 + Midrr_stats.Rng.int rng ~bound:1436 in
      ignore
        (Drr_engine.enqueue m (Packet.create ~flow ~size ~arrival:0.0))
    end;
    let iface = Midrr_stats.Rng.int rng ~bound:2 in
    ignore (Drr_engine.next_packet m iface);
    List.iter
      (fun f ->
        let q = Drr_engine.quantum m f in
        List.iter
          (fun j ->
            let dc = Drr_engine.deficit_on m ~flow:f ~iface:j in
            if dc < 0.0 || dc > q +. 1500.0 then
              Alcotest.failf
                "deficit out of bounds: flow %d iface %d dc=%.1f q=%.1f" f j
                dc q)
          [ 0; 1 ])
      (Drr_engine.flows m)
  done

(* Interface preferences are sacrosanct: packets only appear on allowed
   interfaces (checked against the naive baseline too). *)
let test_preferences_respected () =
  List.iter
    (fun sched ->
      let sim = Netsim.create ~sched () in
      Netsim.add_iface sim 0 (Link.constant (Types.mbps 5.0));
      Netsim.add_iface sim 1 (Link.constant (Types.mbps 2.0));
      Netsim.add_iface sim 2 (Link.constant (Types.mbps 1.0));
      Netsim.add_flow sim 0 ~weight:1.0 ~allowed:[ 0 ]
        (Backlogged { pkt_size = 700 });
      Netsim.add_flow sim 1 ~weight:1.0 ~allowed:[ 1; 2 ]
        (Backlogged { pkt_size = 900 });
      Netsim.add_flow sim 2 ~weight:3.0 ~allowed:[ 0; 2 ]
        (Backlogged { pkt_size = 1200 });
      Netsim.run sim ~until:10.0;
      List.iter
        (fun (f, banned) ->
          List.iter
            (fun j ->
              let b = Netsim.served_cell sim ~flow:f ~iface:j in
              if b > 0 then
                Alcotest.failf "flow %d served %dB on banned interface %d" f b
                  j)
            banned)
        [ (0, [ 1; 2 ]); (1, [ 0 ]); (2, [ 1 ]) ])
    [ Midrr.packed (Midrr.create ()); Drr.packed (Drr.create ()) ]

(* Dynamic behavior: adding an interface mid-run raises rates (property 4:
   use new capacity). *)
let test_new_interface_capacity () =
  let sched = Midrr.packed (Midrr.create ()) in
  let sim = Netsim.create ~sched () in
  Netsim.add_iface sim 0 (Link.constant (Types.mbps 2.0));
  Netsim.add_flow sim 0 ~weight:1.0 ~allowed:[ 0; 1 ]
    (Backlogged { pkt_size = 1000 });
  Netsim.add_flow sim 1 ~weight:1.0 ~allowed:[ 0; 1 ]
    (Backlogged { pkt_size = 1000 });
  Netsim.at sim 20.0 (fun () ->
      Netsim.add_iface sim 1 (Link.constant (Types.mbps 4.0)));
  Netsim.run sim ~until:40.0;
  check_close "flow 0 before" 1.0 (Netsim.avg_rate sim 0 ~t0:5.0 ~t1:19.0);
  check_close "flow 0 after" 3.0 (Netsim.avg_rate sim 0 ~t0:25.0 ~t1:39.0);
  check_close "flow 1 after" 3.0 (Netsim.avg_rate sim 1 ~t0:25.0 ~t1:39.0)

(* Measured allocation satisfies the rate clustering property (Theorem 2)
   on the Fig. 6 phase-1 topology. *)
let test_rate_clustering_measured () =
  let sched = Midrr.packed (Midrr.create ()) in
  let sim = Netsim.create ~sched () in
  Netsim.add_iface sim 0 (Link.constant (Types.mbps 3.0));
  Netsim.add_iface sim 1 (Link.constant (Types.mbps 10.0));
  Netsim.add_flow sim 0 ~weight:1.0 ~allowed:[ 0 ]
    (Backlogged { pkt_size = 1500 });
  Netsim.add_flow sim 1 ~weight:2.0 ~allowed:[ 0; 1 ]
    (Backlogged { pkt_size = 1500 });
  Netsim.add_flow sim 2 ~weight:1.0 ~allowed:[ 1 ]
    (Backlogged { pkt_size = 1500 });
  Netsim.run sim ~until:5.0;
  let snap = Netsim.snapshot sim in
  Netsim.run sim ~until:35.0;
  let flows = [ 0; 1; 2 ] and ifaces = [ 0; 1 ] in
  let share = Netsim.share_since sim snap ~flows ~ifaces in
  let rates = Array.map (fun row -> Array.fold_left ( +. ) 0.0 row) share in
  let inst = Netsim.instance_of sim ~flows ~ifaces in
  (* Allow 2% tolerance: packetization wobbles around the fluid rates. *)
  let violations = Cluster.check ~tol:0.02 inst ~share ~rates in
  match violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "rate clustering violated: %a" Cluster.pp_violation v

(* The measured rates match the water-filling reference on the same
   instance. *)
let test_matches_reference () =
  let sched = Midrr.packed (Midrr.create ()) in
  let sim = Netsim.create ~sched () in
  Netsim.add_iface sim 0 (Link.constant (Types.mbps 3.0));
  Netsim.add_iface sim 1 (Link.constant (Types.mbps 10.0));
  Netsim.add_flow sim 0 ~weight:1.0 ~allowed:[ 0 ]
    (Backlogged { pkt_size = 1500 });
  Netsim.add_flow sim 1 ~weight:2.0 ~allowed:[ 0; 1 ]
    (Backlogged { pkt_size = 1500 });
  Netsim.add_flow sim 2 ~weight:1.0 ~allowed:[ 1 ]
    (Backlogged { pkt_size = 1500 });
  Netsim.run sim ~until:35.0;
  let inst = Netsim.instance_of sim ~flows:[ 0; 1; 2 ] ~ifaces:[ 0; 1 ] in
  let reference = Maxmin.solve inst in
  List.iteri
    (fun i f ->
      let measured = Netsim.avg_rate sim f ~t0:5.0 ~t1:35.0 in
      check_close
        (Printf.sprintf "flow %d vs reference" f)
        (Types.to_mbps reference.rates.(i))
        measured)
    [ 0; 1; 2 ]

(* Lemma 6: two flows served by the same interface (same cluster) keep
   their weighted service difference bounded by a constant — it must not
   grow with the measurement window.  Flows b (phi = 2) and c (phi = 1)
   share interface 2 in the Fig. 6 topology; over a 60 s window they move
   ~50 MB, while |FM| must stay within a few packets. *)
let test_lemma6_service_bound () =
  let m = Midrr.create ~base_quantum:1500 () in
  let sched = Midrr.packed m in
  let sim = Netsim.create ~sched () in
  Netsim.add_iface sim 1 (Link.constant (Types.mbps 3.0));
  Netsim.add_iface sim 2 (Link.constant (Types.mbps 10.0));
  Netsim.add_flow sim 0 ~weight:1.0 ~allowed:[ 1 ]
    (Netsim.Backlogged { pkt_size = 1500 });
  Netsim.add_flow sim 1 ~weight:2.0 ~allowed:[ 1; 2 ]
    (Netsim.Backlogged { pkt_size = 1500 });
  Netsim.add_flow sim 2 ~weight:1.0 ~allowed:[ 2 ]
    (Netsim.Backlogged { pkt_size = 1500 });
  (* Skip the convergence transient, then measure cumulative service. *)
  let window = ref None in
  Netsim.at sim 5.0 (fun () -> window := Some (Metrics.start sched));
  Netsim.run sim ~until:65.0;
  let window = Option.get !window in
  let phi = function 1 -> 2.0 | _ -> 1.0 in
  let fm = Metrics.fm_between window sched ~phi ~i:1 ~j:2 in
  let s_b = Metrics.service_since window sched 1 in
  if s_b < 40_000_000 then Alcotest.failf "too little service: %d" s_b;
  (* Bound: one quantum per interface per flow plus two max packets, with
     2x slack for the shared-cluster drift across both interfaces. *)
  if Float.abs fm > 20_000.0 then
    Alcotest.failf "Lemma 6 bound violated: |FM| = %.0f bytes over %d bytes"
      (Float.abs fm) s_b

(* The online fairness monitor stays quiet on miDRR and raises alarms on
   the unfair per-interface WFQ/DRR split in the same scenario. *)
let run_with_monitor sched =
  let sim = Netsim.create ~sched () in
  let monitor = Fairmon.create ~alarm_threshold:20_000.0 sched in
  Netsim.add_iface sim 0 (Link.constant (Types.mbps 1.0));
  Netsim.add_iface sim 1 (Link.constant (Types.mbps 1.0));
  Netsim.add_flow sim 0 ~weight:1.0 ~allowed:[ 0; 1 ]
    (Netsim.Backlogged { pkt_size = 1000 });
  Netsim.add_flow sim 1 ~weight:1.0 ~allowed:[ 1 ]
    (Netsim.Backlogged { pkt_size = 1000 });
  (* Sample every 5 s. *)
  for k = 0 to 6 do
    Netsim.at sim (Float.of_int k *. 5.0) (fun () ->
        ignore (Fairmon.sample monitor))
  done;
  Netsim.run sim ~until:31.0;
  monitor

let test_fairmon_quiet_on_midrr () =
  let monitor = run_with_monitor (Midrr.packed (Midrr.create ())) in
  Alcotest.(check int) "no alarms" 0 (Fairmon.alarms monitor);
  Alcotest.(check bool) "windows ran" true (Fairmon.windows monitor >= 6)

let test_fairmon_flags_naive_drr () =
  let monitor = run_with_monitor (Drr.packed (Drr.create ())) in
  (* Naive DRR gives 1.5/0.5 while both flows draw from interface 1: the
     same-cluster equality condition is violated every window. *)
  Alcotest.(check bool) "alarms raised" true (Fairmon.alarms monitor >= 3);
  Alcotest.(check bool)
    "violation magnitude" true
    (Fairmon.worst_ever monitor > 100_000.0)

(* Regression: the adversarial instance where the published 1-bit flag
   deviates from max-min.  Every flow of the slow interfaces is also served
   on the fast one, so Algorithm 3.2's skip loop consumes all flags in one
   lap and falls back to round robin.  The counter-flag extension
   (counter_max = 4) recovers the reference allocation exactly; the
   published algorithm must stay strictly better than naive DRR. *)
let adversarial_rates make_sched =
  let weights = [| 2.32112; 2.16673; 2.96835; 3.61532 |] in
  let caps = [| 3.4666e6; 1.98332e7; 3.87589e6 |] in
  let allowed =
    [|
      [| false; true; true |];
      [| true; true; true |];
      [| true; true; false |];
      [| true; false; true |];
    |]
  in
  let sim = Netsim.create ~sched:(make_sched ()) () in
  Array.iteri (fun j c -> Netsim.add_iface sim j (Link.constant c)) caps;
  Array.iteri
    (fun i w ->
      let al = List.filter (fun j -> allowed.(i).(j)) [ 0; 1; 2 ] in
      Netsim.add_flow sim i ~weight:w ~allowed:al
        (Netsim.Backlogged { pkt_size = 1000 }))
    weights;
  Netsim.run sim ~until:25.0;
  let inst =
    Midrr_flownet.Instance.make ~weights ~capacities:caps ~allowed
  in
  let reference = Maxmin.solve inst in
  let measured =
    Array.init 4 (fun i -> 1e6 *. Netsim.avg_rate sim i ~t0:5.0 ~t1:25.0)
  in
  (measured, reference.rates)

let deviation measured reference =
  let acc = ref 0.0 in
  Array.iteri
    (fun i r -> acc := !acc +. Float.abs (r -. reference.(i)))
    measured;
  !acc

let test_adversarial_one_bit_bounded () =
  let measured, reference =
    adversarial_rates (fun () -> Midrr.packed (Midrr.create ()))
  in
  let naive, _ =
    adversarial_rates (fun () -> Drr.packed (Drr.create ()))
  in
  (* The 1-bit flag deviates here (documented fidelity limit) but beats the
     uncoordinated baseline. *)
  let d_midrr = deviation measured reference in
  let d_naive = deviation naive reference in
  if d_midrr >= d_naive then
    Alcotest.failf "1-bit midrr (%.0f) not better than naive (%.0f)" d_midrr
      d_naive

let test_adversarial_counter_exact () =
  let measured, reference =
    adversarial_rates (fun () ->
        Midrr.packed (Midrr.create ~counter_max:4 ()))
  in
  Array.iteri
    (fun i r ->
      check_close ~tol:0.03
        (Printf.sprintf "counter-flag flow %d" i)
        (reference.(i) /. 1e6) (r /. 1e6))
    measured

let () =
  Alcotest.run "midrr"
    [
      ( "figure1",
        [
          Alcotest.test_case "fig1a single iface" `Quick test_fig1a;
          Alcotest.test_case "fig1b no prefs" `Quick test_fig1b;
          Alcotest.test_case "fig1c midrr max-min" `Quick test_fig1c_midrr;
          Alcotest.test_case "fig1c naive drr fails" `Quick
            test_fig1c_naive_drr;
          Alcotest.test_case "infeasible rate pref" `Quick
            test_infeasible_rate_pref;
          Alcotest.test_case "weighted single iface" `Quick
            test_weighted_single_iface;
        ] );
      ( "figure6",
        [
          Alcotest.test_case "phase rates and completions" `Slow
            test_fig6_phases;
          Alcotest.test_case "phases 2 and 3" `Slow test_fig6_phase2_and_3;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "service flags cluster split" `Quick
            test_service_flags_separate_clusters;
          Alcotest.test_case "deficit bounds" `Quick test_deficit_bounds;
          Alcotest.test_case "preferences respected" `Quick
            test_preferences_respected;
          Alcotest.test_case "new interface capacity" `Quick
            test_new_interface_capacity;
          Alcotest.test_case "rate clustering measured" `Quick
            test_rate_clustering_measured;
          Alcotest.test_case "matches water-filling reference" `Quick
            test_matches_reference;
        ] );
      ( "lemmas",
        [
          Alcotest.test_case "lemma 6 service bound" `Quick
            test_lemma6_service_bound;
        ] );
      ( "fairmon",
        [
          Alcotest.test_case "quiet on midrr" `Quick test_fairmon_quiet_on_midrr;
          Alcotest.test_case "flags naive drr" `Quick
            test_fairmon_flags_naive_drr;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "one-bit beats naive" `Slow
            test_adversarial_one_bit_bounded;
          Alcotest.test_case "counter flags exact" `Slow
            test_adversarial_counter_exact;
        ] );
    ]
