(** Sampled begin/end phase spans, exported as Chrome trace_event JSON.

    Register a phase once ([phase]), then bracket the instrumented
    region with [enter]/[exit].  The clock returns monotonic
    nanoseconds as an [int] (an immediate, unlike a boxed float), so
    the instrumented path stores at most two timestamps into
    preallocated rows and allocates nothing.  [sample_every = k] keeps
    every k-th span per phase; a full row buffer counts further spans
    as [dropped] instead of growing.

    Only completed spans are stored, so the exported trace has balanced
    "B"/"E" events by construction — the property CI's trace-smoke step
    checks.  Load the output in [chrome://tracing] or Perfetto. *)

type t

val create : ?capacity:int -> ?sample_every:int -> clock:(unit -> int) -> unit -> t
(** [clock] returns monotonic nanoseconds.  [capacity] bounds stored
    spans (default 65536); [sample_every] thins per phase (default 1 =
    every span). *)

val phase : t -> string -> int
(** Dense id for the named phase, registering on first use.  Cold. *)

val enter : t -> int -> unit
(** Mark phase begin.  Allocation-free; no-op on unsampled ticks. *)

val exit : t -> int -> unit
(** Mark phase end, completing the span begun by the matching sampled
    [enter] (no-op otherwise).  Allocation-free. *)

val count : t -> int
(** Completed spans stored. *)

val dropped : t -> int
(** Sampled spans discarded because the buffer was full. *)

val phases : t -> string list

val chrome_json : t -> string
(** The trace as a Chrome trace_event JSON object
    ({["{"traceEvents":[...]}"]}), timestamps rebased to the first
    sampled begin, in microseconds. *)

val write_chrome : t -> out_channel -> unit
