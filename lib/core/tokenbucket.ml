type t = {
  mutable fill_rate : float; (* bytes/s *)
  bucket_size : float; (* bytes *)
  mutable tokens : float;
  mutable last : float;
}

let create ~rate ~burst =
  if not (rate > 0.0) then invalid_arg "Tokenbucket.create: rate <= 0";
  if not (burst > 0.0) then invalid_arg "Tokenbucket.create: burst <= 0";
  { fill_rate = rate; bucket_size = burst; tokens = burst; last = 0.0 }

let rate t = t.fill_rate
let burst t = t.bucket_size

let settle t ~now =
  if now > t.last then begin
    t.tokens <-
      Float.min t.bucket_size (t.tokens +. ((now -. t.last) *. t.fill_rate));
    t.last <- now
  end

let available t ~now =
  settle t ~now;
  t.tokens

(* Tolerance for the [bytes = burst] boundary: a burst computed by float
   arithmetic can land an ulp either side of the integral byte count, and
   a strict comparison would then misclassify a satisfiable request as
   forever-blocked (or leave [time_until]'s finite answer pointing at a
   [try_consume] that never succeeds).  Both entry points share the same
   scale-relative epsilon so they stay consistent: whenever [time_until]
   returns a finite wait, [try_consume] succeeds after that wait. *)
let eps t = Midrr_flownet.Feq.scale_eps t.bucket_size

let try_consume t ~now ~bytes =
  if bytes < 0 then invalid_arg "Tokenbucket.try_consume: negative bytes";
  settle t ~now;
  let need = Float.of_int bytes in
  if Midrr_flownet.Feq.geq ~eps:(eps t) t.tokens need then begin
    t.tokens <- Float.max 0.0 (t.tokens -. need);
    true
  end
  else false

let time_until t ~now ~bytes =
  settle t ~now;
  let need = Float.of_int bytes in
  let eps = eps t in
  if not (Midrr_flownet.Feq.leq ~eps need t.bucket_size) then Float.infinity
  else if Midrr_flownet.Feq.geq ~eps t.tokens need then 0.0
  else (need -. t.tokens) /. t.fill_rate

let set_rate t ~now new_rate =
  if not (new_rate > 0.0) then invalid_arg "Tokenbucket.set_rate: rate <= 0";
  settle t ~now;
  t.fill_rate <- new_rate
