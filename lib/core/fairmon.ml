type report = {
  window_index : int;
  worst_pair : (Types.flow_id * Types.flow_id) option;
  worst_fm : float;
  pairs_checked : int;
}

type snapshot = {
  served : (Types.flow_id, int) Hashtbl.t;
  served_on : (Types.flow_id * Types.iface_id, int) Hashtbl.t;
  backlogged : (Types.flow_id, bool) Hashtbl.t;
}

type t = {
  sched : Sched_intf.packed;
  phi : Types.flow_id -> float;
  alarm_threshold : float;
  (* Live cumulative state, maintained from the event stream rather than
     by polling the scheduler's counters at every sample. *)
  served : (Types.flow_id, int) Hashtbl.t;
  served_on : (Types.flow_id * Types.iface_id, int) Hashtbl.t;
  backlog : (Types.flow_id, int) Hashtbl.t; (* queued bytes *)
  mutable last : snapshot option;
  mutable window_index : int;
  mutable alarm_count : int;
  mutable worst_ever : float;
}

let bump table key delta =
  Hashtbl.replace table key
    (delta + Option.value (Hashtbl.find_opt table key) ~default:0)

let on_event t (ev : Midrr_obs.Event.t) =
  match ev with
  | Serve { flow; iface; bytes; _ } ->
      bump t.served flow bytes;
      bump t.served_on (flow, iface) bytes;
      bump t.backlog flow (-bytes)
  | Enqueue { flow; bytes } -> bump t.backlog flow bytes
  | Flow_remove { flow } -> Hashtbl.remove t.backlog flow
  | _ -> ()

let create ?(alarm_threshold = 15_000.0) ?(phi = fun _ -> 1.0) sched =
  let t =
    {
      sched;
      phi;
      alarm_threshold;
      served = Hashtbl.create 32;
      served_on = Hashtbl.create 64;
      backlog = Hashtbl.create 32;
      last = None;
      window_index = 0;
      alarm_count = 0;
      worst_ever = 0.0;
    }
  in
  (* Events are increments, so seed the tables with the scheduler's
     cumulative counters for flows registered before the monitor. *)
  List.iter
    (fun f ->
      Hashtbl.replace t.served f (Sched_intf.Packed.served_bytes sched f);
      Hashtbl.replace t.backlog f (Sched_intf.Packed.backlog_bytes sched f);
      List.iter
        (fun j ->
          Hashtbl.replace t.served_on (f, j)
            (Sched_intf.Packed.served_bytes_on sched ~flow:f ~iface:j))
        (Sched_intf.Packed.allowed_ifaces sched f))
    (Sched_intf.Packed.flows sched);
  Sched_intf.Packed.subscribe sched (on_event t);
  t

let take_snapshot t =
  let backlogged = Hashtbl.create (Hashtbl.length t.backlog) in
  Hashtbl.iter (fun f bytes -> Hashtbl.replace backlogged f (bytes > 0))
    t.backlog;
  {
    served = Hashtbl.copy t.served;
    served_on = Hashtbl.copy t.served_on;
    backlogged;
  }

(* The monitor checks exactly Theorem 2's conditions on the window:
   (1) two flows that both drew service from a common interface are in the
       same cluster, so their normalized service must match (|FM| small);
   (2) a flow willing to use an interface another flow actively used must
       not be behind it (FM from the bystander to the user >= -tolerance).
   Cross-cluster pairs where the bystander is ahead are legitimate and are
   not flagged. *)
let sample t =
  let current = take_snapshot t in
  let report =
    match t.last with
    | None ->
        { window_index = 0; worst_pair = None; worst_fm = 0.0; pairs_checked = 0 }
    | Some prev ->
        let eligible =
          Hashtbl.fold
            (fun f was acc ->
              let still =
                Option.value (Hashtbl.find_opt current.backlogged f)
                  ~default:false
              in
              if was && still then f :: acc else acc)
            prev.backlogged []
          |> List.sort Int.compare
        in
        let delta table table' key =
          Float.of_int
            (Option.value (Hashtbl.find_opt table' key) ~default:0
            - Option.value (Hashtbl.find_opt table key) ~default:0)
        in
        let service f = delta prev.served current.served f in
        let service_on f j = delta prev.served_on current.served_on (f, j) in
        let norm f = service f /. t.phi f in
        let worst = ref 0.0 and worst_pair = ref None and pairs = ref 0 in
        let flag a b violation =
          if violation > !worst then begin
            worst := violation;
            worst_pair := Some (a, b)
          end
        in
        let consider a b =
          let shared =
            List.filter
              (fun j ->
                List.mem j (Sched_intf.Packed.allowed_ifaces t.sched b))
              (Sched_intf.Packed.allowed_ifaces t.sched a)
          in
          if shared <> [] then begin
            incr pairs;
            let active f =
              List.exists (fun j -> service_on f j > 0.0) shared
            in
            match (active a, active b) with
            | true, true ->
                (* Same cluster: normalized service must agree. *)
                flag a b (Float.abs (norm a -. norm b))
            | true, false ->
                (* b is a willing bystander: it must not trail a. *)
                flag a b (Float.max 0.0 (norm a -. norm b))
            | false, true -> flag b a (Float.max 0.0 (norm b -. norm a))
            | false, false -> ()
          end
        in
        let rec pairwise = function
          | [] -> ()
          | a :: rest ->
              List.iter (consider a) rest;
              pairwise rest
        in
        pairwise eligible;
        {
          window_index = t.window_index;
          worst_pair = !worst_pair;
          worst_fm = !worst;
          pairs_checked = !pairs;
        }
  in
  if report.worst_fm > t.alarm_threshold then
    t.alarm_count <- t.alarm_count + 1;
  if report.worst_fm > t.worst_ever then t.worst_ever <- report.worst_fm;
  t.last <- Some current;
  t.window_index <- t.window_index + 1;
  report

let alarms t = t.alarm_count
let windows t = t.window_index
let worst_ever t = t.worst_ever
