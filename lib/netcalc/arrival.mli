(** Arrival curves for the traffic the repository can generate.

    Every bounded source in this codebase is token-bucket shaped: a
    {!Midrr_core.Tokenbucket} {e is} the leaky-bucket constraint
    [(sigma, rho) = (burst, rate)], and a CBR source of rate [r] and
    packet size [L] never exceeds [L + (r/8) t] bytes in [t] seconds.
    Unbounded sources (backlogged, finite-in-bulk, Poisson) have no
    arrival curve and yield no delay bound. *)

val token_bucket : rate:float -> burst:float -> Curve.t
(** [rate] in bytes/s, [burst] in bytes: the curve [burst + rate * t]. *)

val of_tokenbucket : Midrr_core.Tokenbucket.t -> Curve.t
(** The constraint a {!Midrr_core.Tokenbucket}-policed flow obeys —
    its [(rate, burst)] parameters read back as a curve. *)

val cbr : rate_bps:float -> pkt:int -> Curve.t
(** A constant-bit-rate packet source: [rate_bps] in bits/s (the
    simulator's unit), burst of one packet. *)

val aggregate : Curve.t list -> Curve.t
(** Sum of arrival curves (cross-traffic as one aggregate); the zero
    curve for the empty list. *)
