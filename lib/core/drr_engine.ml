(* The fast-path DRR/miDRR engine.

   Semantics are defined by [Drr_engine_ref] (the original
   list-and-hashtable implementation, kept as the executable spec); this
   module is the O(active) rewrite that the repository uses by default.
   The differential suite (test/test_differential.ml) drives both engines
   in lockstep through randomized churn and requires identical serve
   sequences, deficits, flags and event streams, and the golden-trace test
   requires byte-identical `midrr run --trace` output — treat any
   divergence as a bug here, not there.

   What changed relative to the spec, and why each decision stays
   O(active flows):

   - Flow and interface states live in dense slot arrays indexed directly
     by their (non-negative) ids, so [enqueue] and [next_packet] do one
     bounds-checked array load where the spec does a [Hashtbl.find_opt].
   - Each flow keeps its per-(flow, interface) links both in a packed
     vector (for the flag-raising sweep of a service turn) and in a
     link-by-iface array indexed by interface id, so [link_for] is one
     array load where the spec scans a list with [List.find_opt].
   - Each interface's round is an {e intrusive} ring (see {!Active_ring}):
     the prev/next pointers live inside the link record, so
     linking/unlinking a newly backlogged / drained flow allocates nothing.
     Only backlogged flows are linked, so a decision never touches idle
     flows no matter how many are registered.
   - Link removal (flow/iface teardown, preference changes) swap-removes
     from the packed vector in O(1) where the spec rebuilds a list. *)

module Iset = Set.Make (Int)
module Event = Midrr_obs.Event

type mode = Plain | Service_flags

type flag_policy = Per_turn | Per_send

(* A single-field all-float record is stored flat, so [cell.fc <- x] writes
   the raw float in place.  Keeping DC_ij behind one of these (instead of a
   [mutable float] field in the mixed [link] record) is what makes deficit
   updates allocation-free: a float store into a mixed record must box. *)
type fcell = { mutable fc : float }

type link = {
  l_flow : flow_state;
  l_iface : iface_state;
  l_self : link option;
      (* [Some] of this very link, tied at construction; cursor updates
         reuse it so moving C_j never allocates a fresh option *)
  mutable flag : int;
      (* SF_ij generalized to a saturating counter of services elsewhere
         since this interface last considered the flow; the paper's one-bit
         flag is the [counter_max = 1] case *)
  l_deficit : fcell; (* DC_ij, bytes: each interface runs its own DRR *)
  mutable l_served : int;
  mutable l_turns : int;
  mutable l_flow_idx : int; (* position in the owning flow's link vector *)
  (* intrusive Active_ring node state; linked iff the flow is backlogged *)
  mutable ar_prev : link;
  mutable ar_next : link;
  mutable ar_linked : bool;
}

and flow_state = {
  f_id : Types.flow_id;
  mutable f_weight : float;
  mutable f_quantum : float; (* Q_i, bytes *)
  f_queue : Pktqueue.t;
  f_links : linkvec;
  mutable f_link_by_iface : link option array; (* indexed by iface id *)
  mutable f_allowed : Iset.t; (* includes interfaces currently offline *)
  mutable f_served : int;
  mutable f_turns : int;
}

and iface_state = {
  i_id : Types.iface_id;
  i_ring : link Active_ring.t;
  mutable i_cursor : link option; (* C_j *)
}

(* A packed growable vector of links.  Slots at index >= [lv_len] are
   stale (they keep whatever link last occupied them — links are their own
   array filler, so no option boxing); never read past [lv_len]. *)
and linkvec = { mutable lv_arr : link array; mutable lv_len : int }

module Aring = Active_ring.Make (struct
  type t = link

  let prev l = l.ar_prev
  let set_prev l p = l.ar_prev <- p
  let next l = l.ar_next
  let set_next l n = l.ar_next <- n
  let linked l = l.ar_linked
  let set_linked l b = l.ar_linked <- b
end)

let lv_create () = { lv_arr = [||]; lv_len = 0 }

let lv_push lv link =
  let cap = Array.length lv.lv_arr in
  if Int.equal lv.lv_len cap then begin
    let a = Array.make (Stdlib.max 4 (2 * cap)) link in
    Array.blit lv.lv_arr 0 a 0 cap;
    lv.lv_arr <- a
  end;
  lv.lv_arr.(lv.lv_len) <- link;
  link.l_flow_idx <- lv.lv_len;
  lv.lv_len <- lv.lv_len + 1

(* O(1) swap-remove; link order within a flow's vector is not meaningful
   (every sweep over it is order-insensitive: flag raising, deficit reset,
   activation into per-interface rings). *)
let lv_swap_remove lv link =
  let last = lv.lv_len - 1 in
  let moved = lv.lv_arr.(last) in
  lv.lv_arr.(link.l_flow_idx) <- moved;
  moved.l_flow_idx <- link.l_flow_idx;
  lv.lv_len <- last

type t = {
  t_mode : mode;
  t_flag_policy : flag_policy;
  t_counter_max : int;
  t_base_quantum : int;
  t_queue_capacity : int option;
  mutable t_flow_slots : flow_state option array; (* indexed by flow id *)
  mutable t_iface_slots : iface_state option array; (* indexed by iface id *)
  mutable t_nflows : int;
  mutable t_nifaces : int;
  mutable t_considered : int;
  mutable t_sink : (Event.t -> unit) option;
}

(* Control-path emission.  Hot-path sites (enqueue / begin_turn /
   check_next / next_packet) match on [t_sink] inline instead, so the
   event is never even allocated when observability is off. *)
let emit t ev = match t.t_sink with None -> () | Some s -> s ev

let set_sink t s = t.t_sink <- s
let sink t = t.t_sink

let create ?(base_quantum = 1500) ?queue_capacity ?(flag_policy = Per_turn)
    ?(counter_max = 1) t_mode =
  if base_quantum <= 0 then invalid_arg "Drr_engine.create: base_quantum <= 0";
  if counter_max < 1 then invalid_arg "Drr_engine.create: counter_max < 1";
  {
    t_mode;
    t_flag_policy = flag_policy;
    t_counter_max = counter_max;
    t_base_quantum = base_quantum;
    t_queue_capacity = queue_capacity;
    t_flow_slots = Array.make 64 None;
    t_iface_slots = Array.make 16 None;
    t_nflows = 0;
    t_nifaces = 0;
    t_considered = 0;
    t_sink = None;
  }

let mode t = t.t_mode
let flag_policy t = t.t_flag_policy
let counter_max t = t.t_counter_max
let base_quantum t = t.t_base_quantum

let name t =
  match t.t_mode with Plain -> "drr-per-interface" | Service_flags -> "midrr"

(* --- dense slot plumbing ---------------------------------------------- *)

let next_pow2_above cap wanted =
  let n = ref (Stdlib.max 8 (2 * cap)) in
  while wanted >= !n do
    n := 2 * !n
  done;
  !n

let grow_flow_slots t f =
  let cap = Array.length t.t_flow_slots in
  if f >= cap then begin
    let a = Array.make (next_pow2_above cap f) None in
    Array.blit t.t_flow_slots 0 a 0 cap;
    t.t_flow_slots <- a
  end

(* Growing the interface id space must also widen every flow's
   link-by-iface array: the invariant is that each spans exactly
   [Array.length t.t_iface_slots] slots, so hot-path lookups need no
   bounds logic beyond the id being in range.  Rare and amortized. *)
let grow_iface_slots t j =
  let cap = Array.length t.t_iface_slots in
  if j >= cap then begin
    let ncap = next_pow2_above cap j in
    let a = Array.make ncap None in
    Array.blit t.t_iface_slots 0 a 0 cap;
    t.t_iface_slots <- a;
    Array.iter
      (function
        | None -> ()
        | Some fs ->
            let b = Array.make ncap None in
            Array.blit fs.f_link_by_iface 0 b 0 cap;
            fs.f_link_by_iface <- b)
      t.t_flow_slots
  end

let flow_slot t f =
  if f >= 0 && f < Array.length t.t_flow_slots then t.t_flow_slots.(f)
  else None

let iface_slot t j =
  if j >= 0 && j < Array.length t.t_iface_slots then t.t_iface_slots.(j)
  else None

let flow_state t f =
  match flow_slot t f with
  | Some fs -> fs
  | None -> invalid_arg "Drr_engine: unknown flow"

let iface_state t j =
  match iface_slot t j with
  | Some ifc -> ifc
  | None -> invalid_arg "Drr_engine: unknown interface"

let link_for flow j =
  if j >= 0 && j < Array.length flow.f_link_by_iface then
    flow.f_link_by_iface.(j)
  else None

(* --- ring membership ------------------------------------------------- *)

let insert_link ifc link =
  (* A newly backlogged flow joins at the end of the current round: just
     before the cursor when one is set, at the ring tail otherwise. *)
  match ifc.i_cursor with
  | Some anchor when anchor.ar_linked ->
      Aring.insert_before ifc.i_ring ~anchor link
  | _ -> Aring.push_back ifc.i_ring link

let remove_link ifc link =
  if link.ar_linked then begin
    (match ifc.i_cursor with
    | Some cur when cur == link ->
        ifc.i_cursor <-
          (if Active_ring.length ifc.i_ring <= 1 then None
           else (Aring.next ifc.i_ring link).l_self)
    | _ -> ());
    Aring.remove ifc.i_ring link
  end

let activate flow =
  for i = 0 to flow.f_links.lv_len - 1 do
    let link = flow.f_links.lv_arr.(i) in
    if not link.ar_linked then insert_link link.l_iface link
  done

let deactivate flow =
  for i = 0 to flow.f_links.lv_len - 1 do
    let link = flow.f_links.lv_arr.(i) in
    remove_link link.l_iface link
  done

(* --- link lifecycle ---------------------------------------------------- *)

let make_link fs ifc =
  let rec link =
    {
      l_flow = fs;
      l_iface = ifc;
      l_self = Some link;
      flag = 0;
      l_deficit = { fc = 0.0 };
      l_served = 0;
      l_turns = 0;
      l_flow_idx = -1;
      ar_prev = link;
      ar_next = link;
      ar_linked = false;
    }
  in
  lv_push fs.f_links link;
  fs.f_link_by_iface.(ifc.i_id) <- Some link;
  link

let drop_link fs link =
  remove_link link.l_iface link;
  lv_swap_remove fs.f_links link;
  fs.f_link_by_iface.(link.l_iface.i_id) <- None

(* --- interface management -------------------------------------------- *)

let has_iface t j = Option.is_some (iface_slot t j)

let add_iface t j =
  if j < 0 then invalid_arg "Drr_engine.add_iface: negative interface id";
  if has_iface t j then invalid_arg "Drr_engine.add_iface: duplicate";
  grow_iface_slots t j;
  let ifc = { i_id = j; i_ring = Active_ring.create (); i_cursor = None } in
  t.t_iface_slots.(j) <- Some ifc;
  t.t_nifaces <- t.t_nifaces + 1;
  (* Link every flow that already listed this interface in its preference;
     backlogged ones join the round immediately (paper property 4: new
     capacity is used).  The slot scan runs in ascending id order, matching
     the reference engine's sorted iteration, so the new ring's order is
     identical under both engines. *)
  Array.iter
    (function
      | Some flow when Iset.mem j flow.f_allowed ->
          let link = make_link flow ifc in
          if not (Pktqueue.is_empty flow.f_queue) then insert_link ifc link
      | _ -> ())
    t.t_flow_slots;
  emit t (Event.Iface_up { iface = j })

let remove_iface t j =
  let (_ : iface_state) = iface_state t j in
  Array.iter
    (function
      | Some flow -> (
          match flow.f_link_by_iface.(j) with
          | None -> ()
          | Some link -> drop_link flow link)
      | None -> ())
    t.t_flow_slots;
  t.t_iface_slots.(j) <- None;
  t.t_nifaces <- t.t_nifaces - 1;
  emit t (Event.Iface_down { iface = j })

let ifaces t =
  let acc = ref [] in
  for j = Array.length t.t_iface_slots - 1 downto 0 do
    if Option.is_some t.t_iface_slots.(j) then acc := j :: !acc
  done;
  !acc

(* --- flow management -------------------------------------------------- *)

let has_flow t f = Option.is_some (flow_slot t f)

let add_flow t ~flow ~weight ~allowed =
  if flow < 0 then invalid_arg "Drr_engine.add_flow: negative flow id";
  if has_flow t flow then invalid_arg "Drr_engine.add_flow: duplicate";
  if not (weight > 0.0) then invalid_arg "Drr_engine.add_flow: weight <= 0";
  grow_flow_slots t flow;
  let fs =
    {
      f_id = flow;
      f_weight = weight;
      f_quantum = weight *. Float.of_int t.t_base_quantum;
      f_queue = Pktqueue.create ?capacity_bytes:t.t_queue_capacity ();
      f_links = lv_create ();
      f_link_by_iface = Array.make (Array.length t.t_iface_slots) None;
      f_allowed = Iset.of_list allowed;
      f_served = 0;
      f_turns = 0;
    }
  in
  Iset.iter
    (fun j ->
      match iface_slot t j with
      | None -> ()
      | Some ifc -> ignore (make_link fs ifc))
    fs.f_allowed;
  t.t_flow_slots.(flow) <- Some fs;
  t.t_nflows <- t.t_nflows + 1;
  emit t (Event.Flow_add { flow; weight })

let remove_flow t f =
  let fs = flow_state t f in
  deactivate fs;
  t.t_flow_slots.(f) <- None;
  t.t_nflows <- t.t_nflows - 1;
  emit t (Event.Flow_remove { flow = f })

let flows t =
  let acc = ref [] in
  for f = Array.length t.t_flow_slots - 1 downto 0 do
    if Option.is_some t.t_flow_slots.(f) then acc := f :: !acc
  done;
  !acc

let set_weight t f w =
  if not (w > 0.0) then invalid_arg "Drr_engine.set_weight: weight <= 0";
  let fs = flow_state t f in
  fs.f_weight <- w;
  fs.f_quantum <- w *. Float.of_int t.t_base_quantum;
  emit t (Event.Weight_change { flow = f; weight = w })

let allowed_ifaces t f = Iset.elements (flow_state t f).f_allowed

let set_allowed t f allowed =
  let fs = flow_state t f in
  let wanted = Iset.of_list allowed in
  let backlogged = not (Pktqueue.is_empty fs.f_queue) in
  (* Drop links to interfaces no longer allowed.  Walk backwards: a
     swap-remove only disturbs indices at or above the current one. *)
  for i = fs.f_links.lv_len - 1 downto 0 do
    let link = fs.f_links.lv_arr.(i) in
    if not (Iset.mem link.l_iface.i_id wanted) then drop_link fs link
  done;
  (* Add links for newly allowed online interfaces. *)
  Iset.iter
    (fun j ->
      if Option.is_none (link_for fs j) then
        match iface_slot t j with
        | None -> ()
        | Some ifc ->
            let link = make_link fs ifc in
            if backlogged then insert_link ifc link)
    wanted;
  fs.f_allowed <- wanted

(* --- data path --------------------------------------------------------- *)

let enqueue t (p : Packet.t) =
  match flow_slot t p.flow with
  | None ->
      (match t.t_sink with
      | None -> ()
      | Some s -> s (Event.Drop { flow = p.flow; bytes = p.size }));
      false
  | Some fs ->
      let was_empty = Pktqueue.is_empty fs.f_queue in
      let accepted = Pktqueue.push fs.f_queue p in
      if accepted && was_empty then activate fs;
      (match t.t_sink with
      | None -> ()
      | Some s ->
          s
            (if accepted then Event.Enqueue { flow = p.flow; bytes = p.size }
             else Event.Drop { flow = p.flow; bytes = p.size }));
      accepted

(* Give a flow its service turn: top up the deficit and, in miDRR mode,
   raise its service flag at every other interface (Algorithm 3.2's
   "SF_ik = 1, forall k <> j"). *)
let begin_turn t ifc link =
  let flow = link.l_flow in
  link.l_deficit.fc <- link.l_deficit.fc +. flow.f_quantum;
  flow.f_turns <- flow.f_turns + 1;
  link.l_turns <- link.l_turns + 1;
  (match t.t_sink with
  | None -> ()
  | Some s -> s (Event.Turn { flow = flow.f_id; iface = ifc.i_id }));
  match t.t_mode with
  | Plain -> ()
  | Service_flags ->
      let links = flow.f_links in
      for i = 0 to links.lv_len - 1 do
        let other = links.lv_arr.(i) in
        if other != link then
          other.flag <- Stdlib.min t.t_counter_max (other.flag + 1)
      done

(* Advance C_j to the next flow to serve.  [skip_current] distinguishes the
   two call sites of the paper's pseudocode: after an ordinary
   insufficient-deficit step the cursor must move past the current flow,
   whereas after the current flow emptied (and was removed from the ring)
   the cursor has already been repositioned on the successor. *)
(* Skip flows served elsewhere since our last visit, clearing their flags
   as we pass (Algorithm 3.2).  Terminates: every skipped flow is
   unflagged, so the second lap stops at the first flow.  Tail-recursive
   rather than a [ref] loop so the advancement allocates nothing. *)
let rec skip_flagged t ifc n =
  if n.flag > 0 then begin
    t.t_considered <- t.t_considered + 1;
    n.flag <- n.flag - 1;
    (match t.t_sink with
    | None -> ()
    | Some s -> s (Event.Flag_reset { flow = n.l_flow.f_id; iface = ifc.i_id }));
    skip_flagged t ifc (Aring.next ifc.i_ring n)
  end
  else n

let check_next t ifc ~skip_current =
  let cur =
    match ifc.i_cursor with
    | Some n when n.ar_linked -> n
    | _ -> Option.get (Active_ring.head ifc.i_ring)
  in
  let start = if skip_current then Aring.next ifc.i_ring cur else cur in
  let n =
    match t.t_mode with Plain -> start | Service_flags -> skip_flagged t ifc start
  in
  ifc.i_cursor <- n.l_self;
  begin_turn t ifc n

(* The decision loop behind both [next_packet] variants.  A top-level
   function (not a local [let rec]) so no closure is built per call, and
   the idle case returns the [Packet.none] sentinel instead of [None] so a
   sinkless decision allocates no minor words at all. *)
let rec decide t ifc j =
  if Active_ring.is_empty ifc.i_ring then Packet.none
  else begin
    let link =
      match ifc.i_cursor with
      | Some n when n.ar_linked -> n
      | _ ->
          (* First decision on this ring (or cursor lost with the ring):
             start a turn for the head flow. *)
          let head = Option.get (Active_ring.head ifc.i_ring) in
          ifc.i_cursor <- head.l_self;
          begin_turn t ifc head;
          head
    in
    let flow = link.l_flow in
    let size = Pktqueue.head_size flow.f_queue in
    t.t_considered <- t.t_considered + 1;
    if Float.of_int size <= link.l_deficit.fc then begin
      let pkt = Pktqueue.pop_exn flow.f_queue in
      link.l_deficit.fc <- link.l_deficit.fc -. Float.of_int size;
      flow.f_served <- flow.f_served + size;
      link.l_served <- link.l_served + size;
      (match t.t_sink with
      | None -> ()
      | Some s ->
          s
            (Event.Serve
               {
                 flow = flow.f_id;
                 iface = j;
                 bytes = size;
                 deficit = link.l_deficit.fc;
               }));
      (* Under [Per_send], "when interface k serves flow i" (paper §3.1
         prose) is read as every transmission, refreshing the flags during
         the whole turn; the default [Per_turn] follows Algorithm 3.2 and
         raises them only at selection (in [begin_turn]). *)
      (match (t.t_mode, t.t_flag_policy) with
      | Service_flags, Per_send ->
          let links = flow.f_links in
          for i = 0 to links.lv_len - 1 do
            let other = links.lv_arr.(i) in
            if other != link then
              other.flag <- Stdlib.min t.t_counter_max (other.flag + 1)
          done
      | _ -> ());
      if Pktqueue.is_empty flow.f_queue then begin
        (* BL_i = 0: reset the deficits and leave every round. *)
        let links = flow.f_links in
        for i = 0 to links.lv_len - 1 do
          links.lv_arr.(i).l_deficit.fc <- 0.0
        done;
        deactivate flow;
        if not (Active_ring.is_empty ifc.i_ring) then
          check_next t ifc ~skip_current:false
      end
      else if Float.of_int (Pktqueue.head_size flow.f_queue) > link.l_deficit.fc
      then check_next t ifc ~skip_current:true;
      pkt
    end
    else begin
      check_next t ifc ~skip_current:true;
      decide t ifc j
    end
  end

let next_packet_noalloc t j = decide t (iface_state t j) j

let next_packet t j =
  let p = next_packet_noalloc t j in
  if Packet.is_none p then None else Some p

(* --- accounting -------------------------------------------------------- *)

let backlog_bytes t f = Pktqueue.backlog_bytes (flow_state t f).f_queue
let backlog_packets t f = Pktqueue.length (flow_state t f).f_queue
let is_backlogged t f = not (Pktqueue.is_empty (flow_state t f).f_queue)
let served_bytes t f = (flow_state t f).f_served

let served_bytes_on t ~flow ~iface =
  match link_for (flow_state t flow) iface with
  | None -> 0
  | Some l -> l.l_served

let deficit t f =
  let fs = flow_state t f in
  let acc = ref 0.0 in
  for i = 0 to fs.f_links.lv_len - 1 do
    acc := Float.max !acc fs.f_links.lv_arr.(i).l_deficit.fc
  done;
  !acc

let deficit_on t ~flow ~iface =
  match link_for (flow_state t flow) iface with
  | None -> 0.0
  | Some l -> l.l_deficit.fc

let quantum t f = (flow_state t f).f_quantum

let service_flag t ~flow ~iface =
  match link_for (flow_state t flow) iface with
  | None -> false
  | Some l -> l.flag > 0

let service_counter t ~flow ~iface =
  match link_for (flow_state t flow) iface with
  | None -> 0
  | Some l -> l.flag

let turns t f = (flow_state t f).f_turns

let turns_on t ~flow ~iface =
  match link_for (flow_state t flow) iface with
  | None -> 0
  | Some l -> l.l_turns

let ring_flows t j =
  Aring.to_list (iface_state t j).i_ring |> List.map (fun l -> l.l_flow.f_id)

let considered t = t.t_considered

let reset_counters t =
  t.t_considered <- 0;
  Array.iter
    (function
      | None -> ()
      | Some fs ->
          fs.f_served <- 0;
          fs.f_turns <- 0;
          for i = 0 to fs.f_links.lv_len - 1 do
            let l = fs.f_links.lv_arr.(i) in
            l.l_served <- 0;
            l.l_turns <- 0
          done)
    t.t_flow_slots

let drops t f = Pktqueue.drops (flow_state t f).f_queue
