(* Scheduling compute tasks on a big.LITTLE CPU (paper §8).

   The NVIDIA Tegra 3 "4-plus-1" packages four fast cores with one
   low-power companion core.  A latency-sensitive rendering task prefers
   the big cores only; background maintenance is happy anywhere; an audio
   decoder pinned to the LITTLE core keeps the big cluster powered down
   when idle.  miDRR allocates core time max-min fairly subject to those
   placement preferences.

   Run with: dune exec examples/big_little.exe *)

open Midrr_core
module Netsim = Midrr_sim.Netsim
module Link = Midrr_sim.Link

let big = [ 0; 1; 2; 3 ]
let little = 4

let render = 0
let background = 1
let audio = 2

(* Core speeds in MIPS-like units; 1 unit = 1 byte/8 in the engine. *)
let speed u = u *. 8.0

let () =
  let sched = Midrr.packed (Midrr.create ~base_quantum:50 ()) in
  let sim = Netsim.create ~sched () in
  List.iter (fun c -> Netsim.add_iface sim c (Link.constant (speed 1000.0))) big;
  Netsim.add_iface sim little (Link.constant (speed 300.0));

  Netsim.add_flow sim render ~weight:3.0 ~allowed:big
    (Netsim.Backlogged { pkt_size = 50 });
  Netsim.add_flow sim background ~weight:1.0 ~allowed:(big @ [ little ])
    (Netsim.Backlogged { pkt_size = 50 });
  Netsim.add_flow sim audio ~weight:1.0 ~allowed:[ little ]
    (Netsim.Backlogged { pkt_size = 50 });

  Netsim.run sim ~until:60.0;
  let rate f = Netsim.avg_rate sim f ~t0:10.0 ~t1:60.0 /. 8.0 *. 1e6 in
  Format.printf "render:     %8.0f units/s on big cores (weight 3)@."
    (rate render);
  Format.printf "background: %8.0f units/s anywhere (weight 1)@."
    (rate background);
  Format.printf "audio:      %8.0f units/s pinned to the LITTLE core@."
    (rate audio);

  (* Where did the background work actually run? *)
  let on_core c = Netsim.served_cell sim ~flow:background ~iface:c in
  Format.printf "@.background placement: big={%s} little=%d bytes@."
    (String.concat "," (List.map (fun c -> string_of_int (on_core c)) big))
    (on_core little)
