(** Ablation: scheduling granularity of the HTTP proxy (paper §6.4).

    The paper concedes its HTTP proxy "cannot support fine-grained packet
    scheduling" yet finds chunk-level control sufficient.  This experiment
    quantifies that trade-off: the same two-interface topology is scheduled
    at different byte-range chunk sizes and compared against the
    water-filling reference, alongside a packet-granularity simulation of
    the identical topology.

    Expected shape: deviation from the reference grows with chunk size;
    packet-level scheduling with counter flags is essentially exact. *)

type row = {
  label : string;
  chunk_size : int option;  (** [None] for the packet-level run *)
  rates : float array;  (** measured per-flow Mb/s, counter-4 coordination *)
  rates_one_bit : float array;  (** same with the paper's 1-bit flag *)
  reference : float array;
  max_deviation_pct : float;
      (** worst per-flow relative deviation from the reference (counter-4) *)
  max_deviation_one_bit_pct : float;
}

type result = row list

val run : ?chunk_sizes:int list -> unit -> result
(** Default chunk sizes: 16 KiB, 64 KiB, 256 KiB, 1 MiB. *)

val print : Format.formatter -> result -> unit
