(* Sweep line over interval endpoints: +1 at start, -1 at stop. *)
let events intervals =
  let evs =
    List.concat_map
      (fun (iv : Gen.interval) -> [ (iv.start, 1); (iv.stop, -1) ])
      intervals
  in
  (* At equal times process closures before openings so that a flow ending
     exactly when another starts does not double-count. *)
  List.sort
    (fun (ta, da) (tb, db) ->
      match Float.compare ta tb with 0 -> compare da db | c -> c)
    evs

let occupancy ?horizon intervals =
  match intervals with
  | [] -> ( match horizon with Some h when h > 0.0 -> [ (0, h) ] | _ -> [])
  | _ ->
      let evs = events intervals in
      let acc = Hashtbl.create 64 in
      let add k dt =
        if dt > 0.0 then
          Hashtbl.replace acc k
            (dt +. Option.value (Hashtbl.find_opt acc k) ~default:0.0)
      in
      let last_t, count =
        List.fold_left
          (fun (last_t, count) (t, delta) ->
            add count (t -. last_t);
            (t, count + delta))
          (0.0, 0) evs
      in
      assert (count = 0);
      (match horizon with
      | Some h when h > last_t -> add 0 (h -. last_t)
      | _ -> ());
      Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
      |> List.sort (fun (a, _) (b, _) -> compare a b)

let active_cdf intervals =
  let weighted =
    occupancy intervals
    |> List.filter (fun (k, _) -> k >= 1)
    |> List.map (fun (k, dt) -> (Float.of_int k, dt))
  in
  Midrr_stats.Cdf.of_weighted weighted

let max_concurrent intervals =
  occupancy intervals |> List.fold_left (fun acc (k, _) -> Stdlib.max acc k) 0

let fraction_at_least intervals k =
  let active = occupancy intervals |> List.filter (fun (c, _) -> c >= 1) in
  let total = List.fold_left (fun acc (_, dt) -> acc +. dt) 0.0 active in
  if total <= 0.0 then 0.0
  else
    let above =
      List.fold_left
        (fun acc (c, dt) -> if c >= k then acc +. dt else acc)
        0.0 active
    in
    above /. total

let active_fraction ?horizon intervals =
  match intervals with
  | [] -> 0.0
  | _ ->
      let occ = occupancy ?horizon intervals in
      let span = List.fold_left (fun acc (_, dt) -> acc +. dt) 0.0 occ in
      let active =
        List.fold_left
          (fun acc (k, dt) -> if k >= 1 then acc +. dt else acc)
          0.0 occ
      in
      if span <= 0.0 then 0.0 else active /. span
