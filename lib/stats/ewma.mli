(** Exponentially weighted moving averages and rate estimators. *)

type t
(** Classic EWMA of a sampled value. *)

val create : alpha:float -> t
(** [create ~alpha] with smoothing factor [0 < alpha <= 1].  Larger alpha
    reacts faster. *)

val update : t -> float -> float
(** Fold in one observation and return the new average. *)

val value : t -> float
(** Current average; [nan] before the first observation. *)

val is_initialized : t -> bool

type rate
(** Time-decayed rate estimator: given (timestamp, amount) increments it
    estimates the current rate amount/second with exponential decay, the way
    a kernel scheduler would track per-flow throughput. *)

val rate_create : tau:float -> rate
(** [tau] is the decay time constant in seconds ([tau > 0]). *)

val rate_update : rate -> now:float -> amount:float -> float
(** Record [amount] delivered at time [now] and return the rate estimate.
    Timestamps must be non-decreasing. *)

val rate_value : rate -> now:float -> float
(** Current estimate decayed to [now] with no new traffic. *)
