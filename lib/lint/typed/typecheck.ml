(* In-process typechecking of fixture sources, so the typed-tier tests
   can run without producing cmt artifacts on disk.  Uses the same
   compiler-libs the build itself uses; the environment is the initial
   Stdlib environment, so fixtures must be self-contained (they declare
   their own local [Par] module, say, rather than depending on
   [Midrr_par]). *)

let init = lazy (Compmisc.init_path ())
let ensure_init () = Lazy.force init

let structure ?(filename = "fixture.ml") source =
  ensure_init ();
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf filename;
  match
    let pstr = Parse.implementation lexbuf in
    let env = Compmisc.initial_env () in
    let tstr, _, _, _, _ = Typemod.type_structure env pstr in
    tstr
  with
  | tstr -> Ok tstr
  | exception e -> (
      match Location.error_of_exn e with
      | Some (`Ok report) ->
          Error (Format.asprintf "%a" Location.print_report report)
      | _ -> Error (Printexc.to_string e))
