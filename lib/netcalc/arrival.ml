let token_bucket ~rate ~burst = Curve.affine ~burst ~rate

let of_tokenbucket tb =
  token_bucket
    ~rate:(Midrr_core.Tokenbucket.rate tb)
    ~burst:(Midrr_core.Tokenbucket.burst tb)

let cbr ~rate_bps ~pkt =
  if pkt <= 0 then invalid_arg "Arrival.cbr: pkt <= 0";
  token_bucket ~rate:(rate_bps /. 8.0) ~burst:(Float.of_int pkt)

let aggregate curves = List.fold_left Curve.sum Curve.zero curves
