(** Stress study: fairness under realistic flow churn.

    The paper evaluates steady backlogged flows; a phone's reality is the
    Fig. 7 churn — dozens of flows arriving and departing.  This study
    drives the scheduler with flows whose arrivals and lifetimes come from
    the synthetic smartphone trace and measures fairness over sliding
    windows: the weighted Jain index of the rates of flows that stayed
    backlogged through each window, plus preference-violation and
    starvation counters.

    Expected shape: the Jain index stays near 1 in every window (miDRR
    redistributes within a few quanta of each arrival/departure), no
    violations, no starved flows. *)

type result = {
  windows : int;
  mean_jain : float;
  min_jain : float;
  violations : int;  (** bytes observed on a banned interface *)
  starved_windows : int;
      (** (window, flow) pairs where a continuously backlogged flow got
          nothing *)
  peak_concurrent : int;
}

val run : ?seed:int -> ?horizon:float -> ?sched:(unit -> Midrr_core.Sched_intf.packed) -> unit -> result

val print : Format.formatter -> result -> unit
