(** Shortest remaining processing time expressed as a {!Sched_prog}
    program.

    Rank = remaining backlog in bytes: the flow closest to draining is
    served first on every interface it allows.  Re-ranks whenever the
    backlog changes (enqueue to a non-empty queue, any service). *)

include Sched_intf.S

val create : ?queue_capacity:int -> unit -> t
val packed : t -> Sched_intf.packed
