(* Answering "why is this app slow?" with the diagnostics toolkit.

   A phone with three interfaces runs four apps with preferences.  We ask
   the reference solver to explain each flow's binding constraint and the
   counterfactual gain from relaxing its interface preference, then watch
   the live system with the fairness monitor.

   Run with: dune exec examples/diagnose_phone.exe *)

open Midrr_core
module Netsim = Midrr_sim.Netsim
module Link = Midrr_sim.Link
module Diagnose = Midrr_flownet.Diagnose

let wifi = 0
let lte = 1
let slow_3g = 2

let names = [| "netflix"; "dropbox"; "skype"; "podcast" |]

let () =
  let sched = Midrr.packed (Midrr.create ~counter_max:4 ()) in
  let sim = Netsim.create ~sched () in
  Netsim.add_iface sim wifi (Link.constant (Types.mbps 8.0));
  Netsim.add_iface sim lte (Link.constant (Types.mbps 5.0));
  Netsim.add_iface sim slow_3g (Link.constant (Types.mbps 1.0));
  let specs =
    [
      (0, 2.0, [ wifi ]);
      (1, 1.0, [ wifi ]);
      (2, 1.0, [ slow_3g ]);
      (3, 1.0, [ wifi; lte ]);
    ]
  in
  List.iter
    (fun (f, weight, allowed) ->
      Netsim.add_flow sim f ~weight ~allowed
        (Netsim.Backlogged { pkt_size = 1300 }))
    specs;

  (* Watch fairness while the scenario runs; the monitor needs the rate
     preferences to normalize service. *)
  let phi = function 0 -> 2.0 | _ -> 1.0 in
  let monitor = Fairmon.create ~phi sched in
  for k = 0 to 5 do
    Netsim.at sim (Float.of_int k *. 5.0) (fun () ->
        ignore (Fairmon.sample monitor))
  done;
  Netsim.run sim ~until:30.0;

  Format.printf "measured rates after 30 s:@.";
  List.iter
    (fun (f, _, _) ->
      Format.printf "  %-8s %6.3f Mb/s@." names.(f)
        (Netsim.avg_rate sim f ~t0:5.0 ~t1:30.0))
    specs;
  Format.printf "fairness monitor: %d windows, %d alarms@.@."
    (Fairmon.windows monitor) (Fairmon.alarms monitor);

  (* Explain every flow from the reference allocation. *)
  let inst =
    Netsim.instance_of sim ~flows:[ 0; 1; 2; 3 ]
      ~ifaces:[ wifi; lte; slow_3g ]
  in
  Format.printf "reference diagnosis (rates in bit/s):@.";
  List.iter
    (fun (e : Diagnose.explanation) ->
      Format.printf "-- %s --@.%a@." names.(e.flow) Diagnose.pp e)
    (Diagnose.explain_all inst)
