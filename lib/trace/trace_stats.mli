(** Descriptive statistics of generated traces.

    Validates and characterizes {!Gen} output beyond the single Fig. 7
    statistic: flow-duration distribution, diurnal activity shape, and
    per-day volumes — the sanity checks one runs before trusting a
    synthetic workload. *)

val durations : Gen.interval list -> Midrr_stats.Summary.t
(** Summary of flow durations in seconds. *)

val duration_cdf : Gen.interval list -> Midrr_stats.Cdf.t
(** Empirical CDF of flow durations.  Raises on an empty trace. *)

val hourly_starts : Gen.interval list -> int array
(** 24 bins: flows started in each hour of day (all days folded). *)

val daily_counts : horizon:float -> Gen.interval list -> int array
(** Flows started on each day of the trace. *)

val peak_hour : Gen.interval list -> int
(** Hour of day with the most flow starts. *)

val pp_report : Format.formatter -> Gen.interval list -> unit
(** Human-readable characterization. *)
