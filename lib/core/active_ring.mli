(** Intrusive circular doubly-linked rings.

    Like {!Ring}, but the prev/next/linked node state lives {e inside} the
    element itself instead of in a separately allocated [Ring.node], so
    linking and unlinking an element allocates nothing and needs no
    [option] indirection on the hot path.  The fast DRR engine threads one
    ring per interface through its per-(flow, interface) link records: only
    backlogged, flag-eligible flows are linked, which is what makes a
    scheduling decision O(active flows) rather than O(total flows).

    The ring type ['a t] is polymorphic so it can appear inside the
    element's own (mutually recursive) type definition; the operations
    come from {!Make}, instantiated once the element type exists.

    Ordering semantics are identical to {!Ring} — same head movement on
    removal, same insert-before-head meaning of [push_back] — so an engine
    built on either structure visits flows in the same order. *)

type 'a t
(** A ring of intrusive elements of type ['a]. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val head : 'a t -> 'a option

(** How to reach the node state embedded in an element.  [prev]/[next] may
    return anything for an unlinked element; [linked] must be [false] for
    an element never yet inserted. *)
module type ELT = sig
  type t

  val prev : t -> t
  val set_prev : t -> t -> unit
  val next : t -> t
  val set_next : t -> t -> unit
  val linked : t -> bool
  val set_linked : t -> bool -> unit
end

module Make (E : ELT) : sig
  val push_back : E.t t -> E.t -> unit
  (** Insert at the "end" of the ring: just before the head, so a full
      traversal starting at the head visits it last.  Raises
      [Invalid_argument] if the element is already linked. *)

  val insert_before : E.t t -> anchor:E.t -> E.t -> unit
  (** Insert immediately before [anchor].  The head does not move.  Raises
      [Invalid_argument] on an unlinked anchor or an already linked
      element. *)

  val remove : E.t t -> E.t -> unit
  (** Unlink the element; if it was the head, the head moves to its
      successor.  Raises [Invalid_argument] if not linked. *)

  val next : E.t t -> E.t -> E.t
  (** Clockwise successor, wrapping.  Raises [Invalid_argument] on an
      unlinked element or empty ring. *)

  val iter : E.t t -> (E.t -> unit) -> unit
  (** Visit each element once, starting at the head. *)

  val to_list : E.t t -> E.t list
end
