(** The omniscient comparator the paper rejects (§3).

    Before introducing the service flag, the paper considers the "obvious
    solution": interfaces exchange rate information and compute whether
    serving a flow leads to the max-min fair solution — and rejects it as
    requiring "an impractical amount of state information ... as well as
    interfaces to know their own instantaneous rates".  This module
    implements that oracle as an upper-bound baseline: it is told every
    interface's line rate, recomputes the water-filling allocation whenever
    the backlogged set changes, and schedules each interface by serving the
    eligible flow farthest behind its target share.

    It matches the reference essentially exactly — at the cost of a global
    max-flow computation per backlog change and per-rate bookkeeping that
    miDRR's one bit replaces.  Useful in ablations to separate "error from
    the 1-bit coordination" from "error inherent to packetization". *)

include Sched_intf.S

val create : ?queue_capacity:int -> capacity:(Types.iface_id -> float) -> unit -> t
(** [capacity j] must return interface [j]'s line rate in bits/s — the
    omniscient knowledge the paper's algorithm avoids needing. *)

val packed : t -> Sched_intf.packed

val recomputations : t -> int
(** Water-filling solves performed so far (the oracle's coordination
    cost). *)

val target_share : t -> flow:Types.flow_id -> iface:Types.iface_id -> float
(** The flow's current target rate on the interface, bits/s (0 when not
    scheduled there). *)

(** UPS-style schedule replay: record a golden schedule from one
    discipline, replay it as rank assignments over the {!Sched_prog}
    substrate, and measure how closely another run reproduces it. *)
module Replay : sig
  type step = {
    r_flow : Types.flow_id;
    r_iface : Types.iface_id;
    r_bytes : int;
  }
  (** One recorded service: [r_flow] sent [r_bytes] on [r_iface]. *)

  val recorder : unit -> (Midrr_obs.Event.t -> unit) * (unit -> step array)
  (** A sink collecting [Serve] events, and the finished schedule in
      service order. *)

  val record : Sched_intf.packed -> unit -> step array
  (** [record sched] subscribes a recorder to [sched] (see
      {!Sched_intf.Packed.subscribe}); call the returned closure after
      the run to obtain the schedule. *)

  val sched : step array -> Sched_intf.packed
  (** The replay scheduler: each interface serves its recorded sequence
      in order whenever the scripted flow is backlogged; flows the
      schedule never routes through an interface are served only when no
      scripted candidate is eligible (work conservation is kept). *)

  type comparison = {
    golden_total : int;
    candidate_total : int;
    matched : int;  (** summed per-interface longest common prefix *)
    exact : bool;
  }

  val compare_schedules :
    golden:step array -> candidate:step array -> comparison
  (** Per-interface longest-common-prefix agreement between two
      schedules; cross-interface interleaving is ignored as a timing
      artifact. *)

  val fraction : comparison -> float
  (** [matched / golden_total] (1.0 for an empty golden schedule). *)
end
