open Midrr_core
module Netsim = Midrr_sim.Netsim
module Link = Midrr_sim.Link
module Instance = Midrr_flownet.Instance
module Maxmin = Midrr_flownet.Maxmin

type scenario = {
  label : string;
  description : string;
  reference : float array;
  measured : (string * float array) list;
}

type result = scenario list

type spec = {
  s_label : string;
  s_desc : string;
  ifaces : (Types.iface_id * float) list;
  flows : (Types.flow_id * float * Types.iface_id list) list;
}

let specs =
  [
    {
      s_label = "fig1a";
      s_desc = "one 2 Mb/s interface, equal weights";
      ifaces = [ (1, Types.mbps 2.0) ];
      flows = [ (0, 1.0, [ 1 ]); (1, 1.0, [ 1 ]) ];
    };
    {
      s_label = "fig1b";
      s_desc = "two 1 Mb/s interfaces, no interface preferences";
      ifaces = [ (1, Types.mbps 1.0); (2, Types.mbps 1.0) ];
      flows = [ (0, 1.0, [ 1; 2 ]); (1, 1.0, [ 1; 2 ]) ];
    };
    {
      s_label = "fig1c";
      s_desc = "flow b restricted to interface 2, equal weights";
      ifaces = [ (1, Types.mbps 1.0); (2, Types.mbps 1.0) ];
      flows = [ (0, 1.0, [ 1; 2 ]); (1, 1.0, [ 2 ]) ];
    };
    {
      s_label = "fig1c-weighted";
      s_desc = "flow b restricted to interface 2, phi_b = 2 phi_a (infeasible)";
      ifaces = [ (1, Types.mbps 1.0); (2, Types.mbps 1.0) ];
      flows = [ (0, 1.0, [ 1; 2 ]); (1, 2.0, [ 2 ]) ];
    };
  ]

let algorithms spec =
  let caps = spec.ifaces in
  [
    ("midrr", Midrr.packed (Midrr.create ()));
    ("drr-naive", Drr.packed (Drr.create ()));
    ("wfq", Wfq.packed (Wfq.create ()));
    ("round-robin", Rrobin.packed (Rrobin.create ()));
    ( "oracle",
      Oracle.packed
        (Oracle.create
           ~capacity:(fun j -> List.assoc j caps)
           ()) );
  ]

let reference_of spec =
  let weights = Array.of_list (List.map (fun (_, w, _) -> w) spec.flows) in
  let capacities = Array.of_list (List.map snd spec.ifaces) in
  let iface_ids = List.map fst spec.ifaces in
  let allowed =
    Array.of_list
      (List.map
         (fun (_, _, ok) ->
           Array.of_list (List.map (fun j -> List.mem j ok) iface_ids))
         spec.flows)
  in
  let inst = Instance.make ~weights ~capacities ~allowed in
  Array.map Types.to_mbps (Maxmin.solve inst).rates

let measure ~horizon spec (name, sched) =
  let sim = Netsim.create ~bin:0.5 ~sched () in
  List.iter (fun (j, r) -> Netsim.add_iface sim j (Link.constant r)) spec.ifaces;
  List.iter
    (fun (f, w, allowed) ->
      Netsim.add_flow sim f ~weight:w ~allowed
        (Netsim.Backlogged { pkt_size = 1000 }))
    spec.flows;
  Netsim.run sim ~until:horizon;
  let rates =
    List.map
      (fun (f, _, _) ->
        Netsim.avg_rate sim f ~t0:(horizon /. 5.0) ~t1:horizon)
      spec.flows
  in
  (name, Array.of_list rates)

let run ?(horizon = 30.0) () =
  List.map
    (fun spec ->
      {
        label = spec.s_label;
        description = spec.s_desc;
        reference = reference_of spec;
        measured = List.map (measure ~horizon spec) (algorithms spec);
      })
    specs

let print ppf result =
  Format.fprintf ppf "@[<v>Figure 1 / Section 1 examples (rates in Mb/s)@,";
  List.iter
    (fun s ->
      Format.fprintf ppf "@,%s: %s@," s.label s.description;
      Format.fprintf ppf "  %-14s a=%.3f b=%.3f@," "reference"
        s.reference.(0) s.reference.(1);
      List.iter
        (fun (name, rates) ->
          Format.fprintf ppf "  %-14s a=%.3f b=%.3f@," name rates.(0)
            rates.(1))
        s.measured)
    result;
  Format.fprintf ppf "@]"
