(** Dense-handle metrics registry: counters, gauges and streaming
    quantile histograms behind int handles.

    Registration ([counter] / [gauge] / [histogram]) is the cold path —
    it looks a name up (creating it on first use) and returns a dense
    int handle.  The hot operations ([incr], [add], [set_gauge],
    [incr_gauge], [observe]) are single stores into preallocated flat
    arrays and allocate nothing; they are part of the R1/R7 lint hot
    set and the [--metrics-only] bench gate.

    Registries merge by metric name ([merge_into]): counters add,
    gauges sum, histograms fold bucket-wise — the collector step for
    per-shard scheduler instances. *)

module Log_histogram = Midrr_stats.Log_histogram

type t

(** Handles are dense ints (exposed so platforms can stash them in
    plain int fields and arrays, with [-1] as a convenient "none"). *)

type counter = int
type gauge = int
type histogram = int

val create : unit -> t

val counter : t -> string -> counter
(** Handle for the named counter, registering it at zero on first use.
    Same name, same handle. *)

val incr : t -> counter -> unit
val add : t -> counter -> int -> unit
val counter_value : t -> counter -> int

val gauge : t -> string -> gauge
val set_gauge : t -> gauge -> float -> unit
val incr_gauge : t -> gauge -> float -> unit
val gauge_value : t -> gauge -> float

val histogram :
  ?lo:float -> ?gamma:float -> ?bins:int -> t -> string -> histogram
(** Handle for the named histogram.  Geometry defaults suit latencies
    in seconds (1 ns resolution, ~5% buckets, range beyond 10^6 s); it
    is fixed at first registration — later calls with the same name
    return the existing sketch and ignore the geometry arguments. *)

val observe : t -> histogram -> float -> unit

val observe_ns : t -> histogram -> int -> unit
(** Duration in integer nanoseconds; see
    {!Log_histogram.observe_ns} for why computed durations should
    cross the call boundary as ints. *)

val hist : t -> histogram -> Log_histogram.t

val counters : t -> (string * int) list
(** Registration-ordered snapshot (allocates; exporter path). *)

val gauges : t -> (string * float) list
val histograms : t -> (string * Log_histogram.t) list

val merge_into : src:t -> dst:t -> unit
(** Fold [src] into [dst] by name, registering names [dst] lacks.
    Raises [Invalid_argument] if same-named histograms differ in
    geometry. *)
