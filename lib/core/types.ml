type flow_id = int
type iface_id = int

let mbps x = x *. 1e6
let kbps x = x *. 1e3
let gbps x = x *. 1e9
let to_mbps x = x /. 1e6
let bytes_to_bits b = 8.0 *. Float.of_int b

let tx_time ~bytes ~rate =
  if rate <= 0.0 then invalid_arg "Types.tx_time: non-positive rate";
  bytes_to_bits bytes /. rate

let pp_rate ppf r =
  if Float.abs r >= 1e9 then Format.fprintf ppf "%.3g Gb/s" (r /. 1e9)
  else if Float.abs r >= 1e6 then Format.fprintf ppf "%.3g Mb/s" (r /. 1e6)
  else if Float.abs r >= 1e3 then Format.fprintf ppf "%.3g kb/s" (r /. 1e3)
  else Format.fprintf ppf "%.3g b/s" r
