type 'a node = {
  value : 'a;
  mutable prev : 'a node;
  mutable next : 'a node;
  mutable linked : bool;
}

type 'a t = { mutable head : 'a node option; mutable length : int }

let create () = { head = None; length = 0 }

let is_empty t = t.length = 0

let length t = t.length

let value n = n.value

let make_singleton v =
  let rec n = { value = v; prev = n; next = n; linked = true } in
  n

let push_back t v =
  match t.head with
  | None ->
      let n = make_singleton v in
      t.head <- Some n;
      t.length <- 1;
      n
  | Some head ->
      let n = { value = v; prev = head.prev; next = head; linked = true } in
      head.prev.next <- n;
      head.prev <- n;
      t.length <- t.length + 1;
      n

let insert_before t anchor v =
  if not anchor.linked then invalid_arg "Ring.insert_before: removed anchor";
  let n = { value = v; prev = anchor.prev; next = anchor; linked = true } in
  anchor.prev.next <- n;
  anchor.prev <- n;
  t.length <- t.length + 1;
  n

let remove t n =
  if not n.linked then invalid_arg "Ring.remove: node already removed";
  n.linked <- false;
  t.length <- t.length - 1;
  if t.length = 0 then t.head <- None
  else begin
    n.prev.next <- n.next;
    n.next.prev <- n.prev;
    (match t.head with Some h when h == n -> t.head <- Some n.next | _ -> ())
  end

let is_member n = n.linked

let head t = t.head

let next t n =
  if not n.linked then invalid_arg "Ring.next: removed node";
  if t.length = 0 then invalid_arg "Ring.next: empty ring";
  n.next

let iter t f =
  match t.head with
  | None -> ()
  | Some head ->
      let rec go n =
        f n.value;
        if n.next != head then go n.next
      in
      go head

let to_list t =
  let acc = ref [] in
  iter t (fun v -> acc := v :: !acc);
  List.rev !acc
