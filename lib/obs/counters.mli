(** Per-(flow, interface) byte tallies fed by the event stream.

    Replaces the ad-hoc cell tables that {!Netsim} and the HTTP proxy
    each kept privately: one aggregator, fed either through its
    {!sink} (counting [Serve] or [Complete] events, per [kind]) or
    directly through {!add} by a platform's datapath. *)

type kind = Serves | Completes

type t

val create : ?kind:kind -> unit -> t
(** Which events the {!sink} tallies (default [Completes]).  [add] is
    unaffected by [kind]. *)

val sink : t -> Sink.t
(** Subscriber that accumulates the bytes of matching events. *)

val add : t -> flow:int -> iface:int -> bytes:int -> unit

val cell : t -> flow:int -> iface:int -> int
(** Cumulative bytes of [flow] on [iface] (0 if never served). *)

val flow_total : t -> int -> int

val iface_total : t -> int -> int

val grand_total : t -> int

val cells : t -> ((int * int) * int) list
(** All non-zero cells as [((flow, iface), bytes)], sorted. *)

val copy : t -> t
(** Independent snapshot of the current tallies. *)

val since : t -> t -> flow:int -> iface:int -> int
(** [since cur base ~flow ~iface] is the bytes accumulated in the cell
    after [base] was captured: [cell cur - cell base]. *)

val pp : Format.formatter -> t -> unit
