(** Registry exporters (cold paths).

    [prometheus_string] renders every counter, gauge and histogram in
    Prometheus text exposition format: counters get a [_total] suffix,
    histograms render as summaries with [quantile] labels
    (0.5/0.9/0.99/0.999) plus [_count], [_sum] and a [_max] gauge.
    Metric names are sanitized to [[a-zA-Z0-9_]] and prefixed
    [midrr_].

    When the registry is fed by a {!Busmetrics} fold, call
    [Busmetrics.publish] first so gauges reflect the mirrors. *)

val sanitize : string -> string

val prometheus_string : Metrics.t -> string

val write_prometheus : Metrics.t -> path:string -> unit
(** Atomic-enough file export: writes [path ^ ".tmp"], then renames
    over [path] so scrapers never observe a torn file. *)

val pp_top : Format.formatter -> Metrics.t -> unit
(** One-screen snapshot — counters and gauges as [name=value] runs,
    one quantile line per non-empty histogram. *)
