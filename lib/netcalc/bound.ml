let delay ~arrival ~service = Curve.hdev ~alpha:arrival ~beta:service
let backlog ~arrival ~service = Curve.vdev ~alpha:arrival ~beta:service

let tightness ~bound ~observed =
  if Float.is_finite bound && bound > 0.0 then Some (observed /. bound)
  else None
