open Midrr_lint

(* Orchestration of the typed tier: build the call graph over all
   loaded units, then run R7 (static zero-allocation over the entry
   reachability set) and R8 (interprocedural domain-safety over the
   Par-task reachability set). *)

type unit_input = {
  ui_modname : string;
  ui_file : string;
  ui_structure : Typedtree.structure;
}

(* Allow-attribute scope stack shared by both rules: file-wide allows at
   the bottom, binding allows pushed per node, expression allows pushed
   during the walk. *)
let make_allow_stack initial =
  let stack = ref [ initial ] in
  let allowed rule () =
    List.exists
      (List.exists (fun r -> Rule.compare r rule = 0))
      !stack
  in
  let with_allows allows f =
    match allows with
    | [] -> f ()
    | _ ->
        stack := allows :: !stack;
        Fun.protect
          ~finally:(fun () ->
            match !stack with _ :: rest -> stack := rest | [] -> ())
          f
  in
  (allowed, with_allows)

let check_r7 ~cfg ~graph ~add_finding ~add_warning =
  let roots = ref [] in
  List.iter
    (fun spec ->
      let matched = ref false in
      Callgraph.iter_nodes graph (fun n ->
          if Callgraph.spec_matches spec n then begin
            matched := true;
            roots := (n.Callgraph.n_key, spec) :: !roots
          end);
      if not !matched then
        add_warning
          (Printf.sprintf
             "typed entry point spec matched no value: %s (stale config, or \
              the unit's .cmt was not loaded)"
             spec))
    cfg.Config.typed_entry_points;
  let reach = Callgraph.reachable graph !roots in
  Hashtbl.iter
    (fun key entry_spec ->
      match Callgraph.find_node graph key with
      | None -> ()
      | Some node ->
          let file_allows = Callgraph.unit_allows graph node.Callgraph.n_unit in
          let allowed, with_allows =
            make_allow_stack (file_allows @ node.Callgraph.n_allows)
          in
          let allowed = allowed Rule.R7 in
          let emit ~loc msg =
            add_finding
              (Finding.v ~file:node.Callgraph.n_file ~loc ~rule:Rule.R7
                 (Printf.sprintf "%s (in [%s], reachable from entry [%s])"
                    msg node.Callgraph.n_display entry_spec))
          in
          Alloc_rule.check_node ~cfg ~graph ~emit ~with_allows ~allowed node)
    reach

(* Walk a unit's structure for applications of Par entry points. *)
let par_sites ~cfg ~graph ~unit_name (str : Typedtree.structure) =
  let sites = ref [] in
  let super = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
        let r = Callgraph.resolve graph ~unit_name p in
        if
          List.exists
            (fun spec -> Callgraph.resolution_matches_entry graph ~spec r)
            cfg.Config.par_task_entries
        then
          let entry = Callgraph.display_of_resolution graph r in
          let task_args =
            List.filter_map
              (fun (label, arg) ->
                match (label, arg) with
                | Asttypes.Optional _, _ -> None
                | _, Some a -> Some a
                | _, None -> None)
              args
          in
          sites := (e.exp_loc, entry, task_args) :: !sites
    | _ -> ());
    super.expr sub e
  in
  let it = { super with expr } in
  it.structure it str;
  List.rev !sites

let check_r8 ~cfg ~graph ~inputs ~add_finding =
  let sums = Domain_rule.summaries graph in
  let all_roots = ref [] in
  List.iter
    (fun ui ->
      (* the executor layer owns its own synchronization: its internal
         Par.run self-calls are not user task sites *)
      if not (Config.domain_spawn_allowed cfg ui.ui_file) then
        let unit_name = ui.ui_modname in
        let file_allows = Callgraph.unit_allows graph unit_name in
        List.iter
          (fun (_, entry, task_args) ->
            List.iter
              (fun arg ->
                let allowed, with_allows = make_allow_stack file_allows in
                let allowed = allowed Rule.R8 in
                let emit ~loc msg =
                  add_finding
                    (Finding.v ~file:ui.ui_file ~loc ~rule:Rule.R8
                       (Printf.sprintf "%s (task of [%s])" msg entry))
                in
                Domain_rule.scan_task_arg ~graph ~summaries:sums ~unit_name
                  ~emit ~allowed ~with_allows arg;
                List.iter
                  (fun key -> all_roots := (key, entry) :: !all_roots)
                  (Domain_rule.task_roots ~graph ~unit_name arg))
              task_args)
          (par_sites ~cfg ~graph ~unit_name ui.ui_structure))
    inputs;
  let reach = Callgraph.reachable graph !all_roots in
  Hashtbl.iter
    (fun key entry ->
      match Callgraph.find_node graph key with
      | None -> ()
      | Some node ->
          if not (Config.domain_spawn_allowed cfg node.Callgraph.n_file) then
            let allows =
              Callgraph.unit_allows graph node.Callgraph.n_unit
              @ node.Callgraph.n_allows
            in
            if not (List.exists (fun r -> Rule.compare r Rule.R8 = 0) allows)
            then
              List.iter
                (fun (loc, display, what) ->
                  add_finding
                    (Finding.v ~file:node.Callgraph.n_file ~loc ~rule:Rule.R8
                       (Printf.sprintf
                          "[%s] writes %s module-level state [%s] and is \
                           reachable from a Par task (via [%s])"
                          node.Callgraph.n_display what display entry)))
                (Domain_rule.global_writes ~graph node))
    reach

let analyze ?(config = Config.default) (inputs : unit_input list) =
  let graph =
    Callgraph.build
      (List.map
         (fun ui ->
           {
             Callgraph.in_modname = ui.ui_modname;
             in_file = ui.ui_file;
             in_structure = ui.ui_structure;
           })
         inputs)
  in
  let findings = ref [] and warnings = ref [] in
  let add_finding f = findings := f :: !findings in
  let add_warning w = warnings := w :: !warnings in
  check_r7 ~cfg:config ~graph ~add_finding ~add_warning;
  check_r8 ~cfg:config ~graph ~inputs ~add_finding;
  let findings = List.sort_uniq Finding.compare !findings in
  (findings, List.rev !warnings)
