(** Network simulation: schedulers driving simulated interfaces.

    Wires a {!Midrr_core.Sched_intf.packed} scheduler to a set of simulated
    interfaces with {!Link} capacity profiles and per-flow traffic sources,
    runs the discrete-event loop, and measures per-flow rates and
    per-(flow, interface) service — everything needed to regenerate the
    paper's simulation figures.

    Model: when an interface is free it asks the scheduler for the next
    packet and transmits it for [size * 8 / rate] seconds at the line rate
    in effect when transmission starts.  Sources keep flow queues stocked
    ([Backlogged], [Finite]) or inject packets on their own clock ([Cbr],
    [Poisson], [On_off], [Tb]). *)

open Midrr_core

type source =
  | Backlogged of { pkt_size : int }
      (** never runs dry: the queue is topped up as it drains *)
  | Finite of { total_bytes : int; pkt_size : int }
      (** a transfer of [total_bytes]; completion time is recorded *)
  | Cbr of { rate : float; pkt_size : int; stop : float option }
      (** constant bit rate arrivals from the flow's start until [stop] *)
  | Poisson of { rate : float; pkt_size : int; stop : float option }
      (** Poisson arrivals with mean load [rate] bits/s *)
  | On_off of {
      rate : float;  (** rate while on, bits/s *)
      pkt_size : int;
      on_mean : float;  (** mean on-period, seconds (exponential) *)
      off_mean : float;
      stop : float option;
    }
  | Tb of { rate : float; burst : float; pkt_size : int; stop : float option }
      (** greedy arrivals through a {!Midrr_core.Tokenbucket} of [burst]
          bytes filling at [rate] bits/s: the source sends whenever the
          bucket can pay for a packet, so cumulative arrivals are tightly
          token-bucket constrained — the shape the delay-bound harness
          ({!Midrr_netcalc}) assumes.  Requires [burst >= pkt_size]. *)

type t

val create :
  ?seed:int ->
  ?bin:float ->
  ?window_depth:int ->
  ?sink:Midrr_obs.Sink.t ->
  ?metrics:Midrr_obs.Busmetrics.t ->
  ?spans:Midrr_obs.Span.t ->
  sched:Sched_intf.packed ->
  unit ->
  t
(** [bin] is the width of rate-measurement bins in seconds (default 1.0);
    [window_depth] the number of packets kept queued for backlogged/finite
    sources (default 32); [seed] drives stochastic sources (default 1).

    [sink] subscribes to the run's full event stream, stamped with
    simulation time: the scheduler's decision events (the simulator
    installs itself on [sched] via {!Sched_intf.Packed.subscribe}) plus a
    [Complete] event per delivered packet.

    [metrics] attaches a {!Midrr_obs.Busmetrics} fold to the same
    stream, teed {e after} the user sink so traces are unaffected, and
    additionally maintains a platform-truth [iface<j>_busy] gauge per
    interface (1.0 while transmitting).  [spans] brackets the
    scheduler-facing phases — "decide" ({!Sched_intf.Packed.next_packet}),
    "enqueue", "complete" — with sampled timestamps for Chrome-trace
    export.  Without any of the three, no scheduler emission is enabled
    at all and the decision path stays allocation-free. *)

val engine : t -> Engine.t

val now : t -> float

val add_iface : t -> Types.iface_id -> Link.t -> unit
(** Attach an interface with its capacity profile.  May be called mid-run
    inside an {!at} hook ("a new interface comes online"). *)

val add_flow :
  t ->
  ?at:float ->
  Types.flow_id ->
  weight:float ->
  allowed:Types.iface_id list ->
  source ->
  unit
(** Register a flow and start its source at time [at] (default 0). *)

val remove_flow : t -> ?at:float -> Types.flow_id -> unit
(** Stop the source and deregister the flow at time [at] (default: now). *)

val at : t -> float -> (unit -> unit) -> unit
(** Schedule an arbitrary scenario action (e.g. changing weights through
    the scheduler handle). *)

val set_weight : t -> Types.flow_id -> float -> unit
(** Change a flow's rate preference in the scheduler and the simulator's
    bookkeeping.  Call from an {!at} hook for timed changes. *)

val set_allowed : t -> Types.flow_id -> Types.iface_id list -> unit
(** Change a flow's interface preference, waking newly allowed
    interfaces. *)

val on_complete :
  t -> (time:float -> iface:Types.iface_id -> Packet.t -> unit) -> unit
(** Add a hook called at every packet transmission completion. *)

val run : t -> until:float -> unit
(** Advance the simulation to the given time. *)

(** {1 Measurement} *)

val rate_series : t -> Types.flow_id -> (float * float) array
(** Per-bin throughput of the flow in Mb/s, from completion events. *)

val avg_rate : t -> Types.flow_id -> t0:float -> t1:float -> float
(** Mean throughput over a window, Mb/s. *)

val completion_time : t -> Types.flow_id -> float option
(** When a [Finite] transfer delivered its last byte. *)

val iface_rate_series : t -> Types.iface_id -> (float * float) array
(** Per-bin bytes carried by the interface, as Mb/s. *)

val iface_utilization : t -> Types.iface_id -> t0:float -> t1:float -> float
(** Fraction of the interface's offered capacity actually carried over the
    window (1.0 = fully utilized); 0 when the link offered nothing. *)

val served_cell : t -> flow:Types.flow_id -> iface:Types.iface_id -> int
(** Cumulative bytes of the flow carried by the interface. *)

type snapshot

val snapshot : t -> snapshot
(** Capture cumulative per-(flow, interface) counters. *)

val share_since :
  t -> snapshot -> flows:Types.flow_id list -> ifaces:Types.iface_id list ->
  float array array
(** [share_since t snap ~flows ~ifaces] is the measured rate matrix
    [r_ij] in bits/s between the snapshot and now (ordered by the given
    lists).  Requires time to have advanced since the snapshot. *)

val instance_of :
  t -> flows:Types.flow_id list -> ifaces:Types.iface_id list ->
  Midrr_flownet.Instance.t
(** Freeze the given flows (with their registered weights and preferences)
    and the interfaces at their {e current} line rates into a solver
    instance, for comparing measured against reference allocations. *)

val backlogged_flows : t -> Types.flow_id list
(** Flows with a non-empty queue right now, ascending. *)
