(* Sampled begin/end phase spans.  The clock hands back monotonic
   nanoseconds as an immediate int (not a float) so [enter]/[exit]
   allocate nothing: a sampled enter stores one timestamp into a
   preallocated slot, the matching exit copies the pair into flat
   phase/begin/end rows.  When the row buffer fills, further samples
   are counted as dropped rather than grown.  Completed rows export as
   Chrome trace_event JSON ("ph":"B"/"E"), balanced by construction
   because only finished spans are stored. *)

let no_start = min_int

type t = {
  clock : unit -> int; (* monotonic nanoseconds *)
  sample_every : int;
  capacity : int;
  mutable names : string array;
  mutable n_phases : int;
  mutable ticks : int array; (* per-phase enter counts, for sampling *)
  mutable pending : int array; (* sampled start ns, [no_start] if none *)
  ph : int array; (* completed rows: phase id, begin ns, end ns *)
  tb : int array;
  te : int array;
  mutable n : int;
  mutable dropped : int;
}

let create ?(capacity = 65536) ?(sample_every = 1) ~clock () =
  if capacity <= 0 then invalid_arg "Span.create: capacity <= 0";
  if sample_every <= 0 then invalid_arg "Span.create: sample_every <= 0";
  {
    clock;
    sample_every;
    capacity;
    names = Array.make 4 "";
    n_phases = 0;
    ticks = Array.make 4 0;
    pending = Array.make 4 no_start;
    ph = Array.make capacity 0;
    tb = Array.make capacity 0;
    te = Array.make capacity 0;
    n = 0;
    dropped = 0;
  }

(* Cold: called once per phase name at setup. *)
let phase t name =
  let found = ref (-1) in
  for i = 0 to t.n_phases - 1 do
    if String.equal t.names.(i) name then found := i
  done;
  if !found >= 0 then !found
  else begin
    if Int.equal t.n_phases (Array.length t.names) then begin
      let cap = 2 * t.n_phases in
      let names = Array.make cap "" in
      let ticks = Array.make cap 0 in
      let pending = Array.make cap no_start in
      Array.blit t.names 0 names 0 t.n_phases;
      Array.blit t.ticks 0 ticks 0 t.n_phases;
      Array.blit t.pending 0 pending 0 t.n_phases;
      t.names <- names;
      t.ticks <- ticks;
      t.pending <- pending
    end;
    let p = t.n_phases in
    t.names.(p) <- name;
    t.n_phases <- p + 1;
    p
  end

let enter t p =
  let k = t.ticks.(p) in
  t.ticks.(p) <- k + 1;
  if Int.equal (k mod t.sample_every) 0 then
    if t.n < t.capacity then t.pending.(p) <- t.clock ()
    else t.dropped <- t.dropped + 1

let exit t p =
  let s = t.pending.(p) in
  if not (Int.equal s no_start) then begin
    t.pending.(p) <- no_start;
    if t.n < t.capacity then begin
      t.ph.(t.n) <- p;
      t.tb.(t.n) <- s;
      t.te.(t.n) <- t.clock ();
      t.n <- t.n + 1
    end
    else t.dropped <- t.dropped + 1
  end

let count t = t.n
let dropped t = t.dropped
let phases t = Array.to_list (Array.sub t.names 0 t.n_phases)

(* --- Chrome trace_event export ------------------------------------------- *)

(* Timestamps are rebased to the earliest sampled begin so the trace
   opens at t = 0 regardless of the absolute clock origin.  ts is in
   microseconds per the trace_event spec. *)
let chrome_buf t buf =
  let t0 = ref max_int in
  for i = 0 to t.n - 1 do
    if t.tb.(i) < !t0 then t0 := t.tb.(i)
  done;
  let us ns = Float.of_int (ns - !t0) /. 1e3 in
  Buffer.add_string buf "{\"traceEvents\":[";
  for i = 0 to t.n - 1 do
    if i > 0 then Buffer.add_string buf ",";
    let name = t.names.(t.ph.(i)) in
    Buffer.add_string buf
      (Printf.sprintf
         "\n{\"name\":%S,\"cat\":\"midrr\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":%.3f},"
         name (us t.tb.(i)));
    Buffer.add_string buf
      (Printf.sprintf
         "\n{\"name\":%S,\"cat\":\"midrr\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":%.3f}"
         name (us t.te.(i)))
  done;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let chrome_json t =
  let buf = Buffer.create (256 + (t.n * 160)) in
  chrome_buf t buf;
  Buffer.contents buf

let write_chrome t oc =
  let buf = Buffer.create (256 + (t.n * 160)) in
  chrome_buf t buf;
  Buffer.output_buffer oc buf
