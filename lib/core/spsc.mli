(** Bounded single-producer/single-consumer ring mailbox.

    The cross-shard channel of the sharded engine: the routing domain
    pushes operations, exactly one shard domain pops them.  The ring is
    a power-of-two array with monotonically increasing head (consumer)
    and tail (producer) cursors; a slot's payload is published by the
    producer's [Atomic.set] on the tail and acquired by the consumer's
    [Atomic.get], so the non-atomic array accesses never race (OCaml's
    memory model orders them through the atomic cursor pair).  Each side
    additionally keeps a private cached copy of the other side's cursor
    and refreshes it only on apparent full/empty, so the steady-state
    hot ops touch one shared atomic each.

    Single producer, single consumer is a {e contract}, not a checked
    property: at most one domain may ever call the push side and at most
    one the pop side.

    The hot operations [try_push] and [try_pop] are allocation-free
    (proven by the R7 typed lint): a push is an array store plus an
    atomic increment, a pop is an array load plus an atomic increment.
    [try_pop] therefore returns the ring's [dummy] element — not an
    option — when the ring is empty; compare with [==] against the
    dummy you supplied, or use {!pop_opt} off the hot path. *)

type 'a t

val create : dummy:'a -> int -> 'a t
(** [create ~dummy capacity] builds an empty ring holding at least
    [capacity] elements (rounded up to a power of two, minimum 1).
    [dummy] fills empty slots — consumed slots are reset to it so the
    ring never retains a popped element for the GC — and is what
    {!try_pop}/{!pop} return on empty.  The dummy itself must never be
    pushed: "try_pop returned the dummy" is the ring's only emptiness
    signal.  Raises [Invalid_argument] when
    [capacity <= 0] or exceeds [Sys.max_array_length / 2]. *)

val capacity : 'a t -> int
(** The rounded-up power-of-two capacity. *)

val length : 'a t -> int
(** Elements currently buffered.  Exact only from one of the two
    endpoint domains; a third-party reader sees a point-in-time bound. *)

val is_empty : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** Producer side.  [false] when the ring is full (backpressure — the
    element is {e not} stored); the producer decides whether to spin,
    batch, or shed.  Allocation-free. *)

val push : 'a t -> 'a -> unit
(** [try_push] in a [Domain.cpu_relax] spin until space appears.  Only
    correct when exactly one consumer is guaranteed to drain the ring. *)

val try_pop : 'a t -> 'a
(** Consumer side.  Pops the oldest element, or returns the [dummy] the
    ring was created with when empty.  Allocation-free. *)

val pop : 'a t -> 'a
(** [try_pop] in a [Domain.cpu_relax] spin until an element appears. *)

val pop_opt : 'a t -> 'a option
(** Option-returning [try_pop] for tests and cold paths (allocates). *)

val push_slice : 'a t -> 'a array -> pos:int -> len:int -> int
(** [push_slice t src ~pos ~len] pushes as many of
    [src.(pos) .. src.(pos + len - 1)] as currently fit, in order, with a
    {e single} tail publication, and returns how many were pushed (0 when
    full; elements beyond the return count are not stored).  FIFO order
    is preserved across any mix of [push]/[push_slice].  The batch
    amortizes the shared-cursor traffic that dominates per-element cost
    under cross-domain cache contention.  Raises [Invalid_argument] when
    [pos]/[len] fall outside [src]. *)

val pop_slice : 'a t -> 'a array -> pos:int -> len:int -> int
(** [pop_slice t dst ~pos ~len] pops up to [len] oldest elements into
    [dst.(pos) ..], overwriting, with a single head publication, and
    returns how many were popped (0 when empty).  Consumed ring slots
    are reset to the dummy, as with {!try_pop}.  Raises
    [Invalid_argument] when [pos]/[len] fall outside [dst]. *)
