type edge = { dst : int; mutable cap : float; mutable flow : float; rev : int }
(* [rev] is the index of the paired reverse edge inside [adj.(dst)]. *)

type t = { n : int; adj : edge array array; mutable sizes : int array }
(* Edges are appended per node; [adj] rows grow geometrically. *)

let infinity_cap = Float.max_float /. 4.0

let default_eps = 1e-12

let create ~n =
  if n <= 0 then invalid_arg "Maxflow.create: n <= 0";
  { n; adj = Array.make n [||]; sizes = Array.make n 0 }

let n_nodes t = t.n

let push_edge t node e =
  let row = t.adj.(node) in
  let size = t.sizes.(node) in
  if size = Array.length row then begin
    let row' = Array.make (Stdlib.max 4 (2 * size)) e in
    Array.blit row 0 row' 0 size;
    t.adj.(node) <- row'
  end;
  t.adj.(node).(size) <- e;
  t.sizes.(node) <- size + 1

(* Handles encode (node, index-in-row) so edges can be retrieved in O(1). *)
let handle node idx = (node * 1_000_000) + idx
let handle_node h = h / 1_000_000
let handle_idx h = h mod 1_000_000

let add_edge t ~src ~dst ~cap =
  if cap < 0.0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: node out of range";
  let fwd_idx = t.sizes.(src) and rev_idx = t.sizes.(dst) in
  push_edge t src { dst; cap; flow = 0.0; rev = rev_idx };
  push_edge t dst { dst = src; cap = 0.0; flow = 0.0; rev = fwd_idx };
  handle src fwd_idx

let get_edge t h = t.adj.(handle_node h).(handle_idx h)

let reset_flow t =
  for v = 0 to t.n - 1 do
    for i = 0 to t.sizes.(v) - 1 do
      t.adj.(v).(i).flow <- 0.0
    done
  done

let set_cap t h cap =
  if cap < 0.0 then invalid_arg "Maxflow.set_cap: negative capacity";
  (get_edge t h).cap <- cap;
  reset_flow t

let flow_on t h = (get_edge t h).flow

let residual e = e.cap -. e.flow

(* Dinic: BFS builds the level graph, DFS sends blocking flows along strictly
   increasing levels.  [iter] holds the per-node current-arc pointers. *)
let max_flow ?(eps = default_eps) t ~src ~dst =
  if src = dst then invalid_arg "Maxflow.max_flow: src = dst";
  let level = Array.make t.n (-1) in
  let iter = Array.make t.n 0 in
  let queue = Queue.create () in
  let bfs () =
    Array.fill level 0 t.n (-1);
    Queue.clear queue;
    level.(src) <- 0;
    Queue.push src queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      for i = 0 to t.sizes.(v) - 1 do
        let e = t.adj.(v).(i) in
        if residual e > eps && level.(e.dst) < 0 then begin
          level.(e.dst) <- level.(v) + 1;
          Queue.push e.dst queue
        end
      done
    done;
    level.(dst) >= 0
  in
  let rec dfs v want =
    if v = dst then want
    else begin
      let sent = ref 0.0 in
      while !sent <= eps && iter.(v) < t.sizes.(v) do
        let e = t.adj.(v).(iter.(v)) in
        if residual e > eps && level.(e.dst) = level.(v) + 1 then begin
          let pushed = dfs e.dst (Float.min want (residual e)) in
          if pushed > eps then begin
            e.flow <- e.flow +. pushed;
            let r = t.adj.(e.dst).(e.rev) in
            r.flow <- r.flow -. pushed;
            sent := pushed
          end
          else iter.(v) <- iter.(v) + 1
        end
        else iter.(v) <- iter.(v) + 1
      done;
      !sent
    end
  in
  let total = ref 0.0 in
  while bfs () do
    Array.fill iter 0 t.n 0;
    let continue = ref true in
    while !continue do
      let pushed = dfs src infinity_cap in
      if pushed > eps then total := !total +. pushed else continue := false
    done
  done;
  !total

let residual_coreachable ?(eps = default_eps) t ~dst =
  let seen = Array.make t.n false in
  let queue = Queue.create () in
  seen.(dst) <- true;
  Queue.push dst queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    (* Arc v->u exists in the residual graph iff the edge paired with some
       u->v entry of adj.(u) has positive residual. *)
    for i = 0 to t.sizes.(u) - 1 do
      let e = t.adj.(u).(i) in
      let pair = t.adj.(e.dst).(e.rev) in
      if residual pair > eps && not seen.(e.dst) then begin
        seen.(e.dst) <- true;
        Queue.push e.dst queue
      end
    done
  done;
  seen

let residual_reachable ?(eps = default_eps) t ~src =
  let seen = Array.make t.n false in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    for i = 0 to t.sizes.(v) - 1 do
      let e = t.adj.(v).(i) in
      if residual e > eps && not seen.(e.dst) then begin
        seen.(e.dst) <- true;
        Queue.push e.dst queue
      end
    done
  done;
  seen
