type t = {
  q : Packet.t Queue.t;
  capacity : int option;
  mutable bytes : int;
  mutable drops : int;
}

let create ?capacity_bytes () =
  (match capacity_bytes with
  | Some c when c <= 0 -> invalid_arg "Pktqueue.create: capacity <= 0"
  | _ -> ());
  { q = Queue.create (); capacity = capacity_bytes; bytes = 0; drops = 0 }

let push t (p : Packet.t) =
  let fits =
    match t.capacity with None -> true | Some c -> t.bytes + p.size <= c
  in
  if fits then begin
    Queue.push p t.q;
    t.bytes <- t.bytes + p.size;
    true
  end
  else begin
    t.drops <- t.drops + 1;
    false
  end

let pop t =
  match Queue.take_opt t.q with
  | None -> None
  | Some p ->
      t.bytes <- t.bytes - p.size;
      Some p

let peek t = Queue.peek_opt t.q

let head_size t = match Queue.peek_opt t.q with None -> 0 | Some p -> p.size

let backlog_bytes t = t.bytes

let length t = Queue.length t.q

let is_empty t = Queue.is_empty t.q

let drops t = t.drops

let clear t =
  Queue.clear t.q;
  t.bytes <- 0
