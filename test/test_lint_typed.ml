(* The typed lint tier (R7/R8) against an in-process-typechecked fixture
   corpus: allocating constructs on the entry reachability set, mutable
   writes hidden one call deep from a Par task (the case the untyped R6
   provably misses), allow-attribute suppression, and the shared
   baseline ratchet. *)

module L = Midrr_lint
module T = Midrr_lint_typed

let fixture_file = "fix.ml"

let typed_lint ?config source =
  match T.Typecheck.structure ~filename:fixture_file source with
  | Error msg -> Alcotest.failf "fixture does not typecheck: %s" msg
  | Ok str ->
      let ui =
        {
          T.Typed_engine.ui_modname = "Fix";
          ui_file = fixture_file;
          ui_structure = str;
        }
      in
      fst (T.Typed_engine.analyze ?config [ ui ])

(* Entry-rooted config: R7 walks from [Fix.entry]; R8 recognizes the
   fixture's local [Par]. *)
let cfg =
  {
    L.Config.default with
    typed_entry_points = [ "Fix.entry" ];
    par_task_entries = [ "Par.run"; "Par.map" ];
  }

let rules fs = List.map (fun (f : L.Finding.t) -> f.rule) fs

let check_rules what expected fs =
  Alcotest.(check (list string))
    what expected
    (List.map L.Rule.id (rules fs))

(* ---- R7: allocating constructs --------------------------------------- *)

let test_r7_closure () =
  check_rules "closure flagged" [ "R7" ]
    (typed_lint ~config:cfg
       "let entry xs = List.iter (fun x -> ignore x) xs")

let test_r7_tuple () =
  check_rules "tuple flagged" [ "R7" ]
    (typed_lint ~config:cfg "let entry a b = (a, b)");
  check_rules "match-scrutinee tuple exempt" []
    (typed_lint ~config:cfg
       "let entry a b = match (a, b) with x, y -> x + y")

let test_r7_some () =
  check_rules "Some wrapping flagged" [ "R7" ]
    (typed_lint ~config:cfg "let entry x = Some x")

let test_r7_partial_application () =
  check_rules "partial application flagged" [ "R7" ]
    (typed_lint ~config:cfg
       "let add a b = a + b\nlet entry x = add x");
  check_rules "total call stays quiet" []
    (typed_lint ~config:cfg
       "let add a b = a + b\nlet entry x = add x 1")

let test_r7_list_build () =
  check_rules "list building flagged" [ "R7" ]
    (typed_lint ~config:cfg "let entry n = List.init n succ")

let test_r7_boxed_float_return () =
  check_rules "boxed-float return flagged" [ "R7" ]
    (typed_lint ~config:cfg "let entry x = x +. 1.0");
  check_rules "int return stays quiet" []
    (typed_lint ~config:cfg "let entry x = x + 1")

let test_r7_hidden_one_call_deep () =
  let source = "let helper x = [ x ]\nlet entry x = helper x" in
  (* the typed tier follows the call and blames the helper *)
  let fs = typed_lint ~config:cfg source in
  check_rules "allocation one call deep flagged" [ "R7" ] fs;
  let f = List.hd fs in
  Alcotest.(check int) "blamed at the helper's line" 1 f.line;
  (* the untyped tier has no view of this at all: no rule fires *)
  let untyped = L.Driver.lint_string ~file:fixture_file source in
  check_rules "untyped tier is blind to it" [] untyped

let test_r7_allow () =
  check_rules "binding-level allow" []
    (typed_lint ~config:cfg
       "let helper x = [ x ] [@@midrr.lint.allow \"R7\"]\n\
        let entry x = helper x");
  check_rules "expression-level allow" []
    (typed_lint ~config:cfg
       "let entry x = (Some x [@midrr.lint.allow \"R7\"])");
  check_rules "file-wide allow" []
    (typed_lint ~config:cfg
       "[@@@midrr.lint.allow \"R7\"]\nlet entry x = Some x");
  check_rules "allow for another rule does not leak" [ "R7" ]
    (typed_lint ~config:cfg
       "let entry x = (Some x [@midrr.lint.allow \"R8\"])")

let test_r7_exempt_type () =
  check_rules "configured event type exempt" []
    (typed_lint ~config:cfg
       "module Event = struct type t = Serve of int end\n\
        let entry s x = s (Event.Serve x)")

let test_r7_raise_path_cold () =
  check_rules "invalid_arg message is a cold path" []
    (typed_lint ~config:cfg
       "let entry x = if x < 0 then invalid_arg (string_of_int x) else x")

let test_r7_unreachable_not_scanned () =
  check_rules "allocations off the entry set stay quiet" []
    (typed_lint ~config:cfg
       "let unrelated x = Some x\nlet entry x = x + 1")

(* ---- R8: interprocedural domain-safety ------------------------------- *)

(* R8-only fixtures: no R7 roots, so the task-building closures and
   lists in [entry] do not add allocation noise to the expectations. *)
let cfg_r8 = { cfg with L.Config.typed_entry_points = [] }

let par_prelude =
  "module Par = struct\n\
  \  let run ~jobs:_ fs = List.map (fun f -> f ()) fs\n\
  \  let map f xs = Array.map f xs\n\
   end\n"

let test_r8_captured_write () =
  let fs =
    typed_lint ~config:cfg_r8
      (par_prelude
     ^ "let shared = ref 0\n\
        let entry () = Par.run ~jobs:2 [ (fun () -> shared := 1) ]")
  in
  check_rules "write to module-level ref flagged" [ "R8" ] fs

let test_r8_hidden_one_call_deep () =
  let source =
    par_prelude
    ^ "let bump r = r := !r + 1\n\
       let entry () =\n\
      \  let counter = ref 0 in\n\
      \  Par.run ~jobs:2 [ (fun () -> bump counter) ]"
  in
  let fs = typed_lint ~config:cfg_r8 source in
  check_rules "write hidden one call deep flagged" [ "R8" ] fs;
  (match fs with
  | [ f ] ->
      let has_sub ~sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        "message names the writing callee" true
        (has_sub ~sub:"Fix.bump" f.message)
  | _ -> ());
  (* the untyped R6 only sees writes textually inside the closure: it
     provably misses the call-through mutation *)
  let untyped = L.Driver.lint_string ~file:fixture_file source in
  check_rules "untyped R6 misses it" []
    (List.filter (fun (f : L.Finding.t) -> L.Rule.compare f.rule L.Rule.R6 = 0)
       untyped)

let test_r8_transitive_two_deep () =
  (* the summary fixpoint carries the write through two levels *)
  check_rules "write two calls deep flagged" [ "R8" ]
    (typed_lint ~config:cfg_r8
       (par_prelude
      ^ "let poke r = r := 1\n\
         let bump r = poke r\n\
         let entry () =\n\
        \  let counter = ref 0 in\n\
        \  Par.run ~jobs:2 [ (fun () -> bump counter) ]"))

let test_r8_task_local_ok () =
  check_rules "task-local mutation is fine" []
    (typed_lint ~config:cfg_r8
       (par_prelude
      ^ "let entry () =\n\
        \  Par.run ~jobs:2 [ (fun () -> let x = ref 0 in x := 1; !x) ]"))

let test_r8_atomic_ok () =
  check_rules "Atomic is sanctioned" []
    (typed_lint ~config:cfg_r8
       (par_prelude
      ^ "let hits = Atomic.make 0\n\
         let entry () = Par.run ~jobs:2 [ (fun () -> Atomic.incr hits) ]"))

let test_r8_serial_write_ok () =
  (* a write outside any closure literal runs at the call site, serially *)
  check_rules "serial write outside the task is fine" []
    (typed_lint ~config:cfg_r8
       (par_prelude
      ^ "let shared = ref 0\n\
         let entry () = shared := 1; Par.run ~jobs:2 [ (fun () -> 0) ]"))

let test_r8_allow () =
  check_rules "file-wide R8 allow" []
    (typed_lint ~config:cfg_r8
       ("[@@@midrr.lint.allow \"R8\"]\n" ^ par_prelude
      ^ "let shared = ref 0\n\
         let entry () = Par.run ~jobs:2 [ (fun () -> shared := 1) ]"))

let test_r8_reachable_global_write () =
  (* an ident task whose callee graph writes module state, with no write
     anywhere inside the task literal *)
  let fs =
    typed_lint ~config:cfg_r8
      (par_prelude
     ^ "let tally = ref 0\n\
        let log_one x = tally := !tally + x\n\
        let work x = log_one x\n\
        let entry xs = Par.map work xs")
  in
  check_rules "global write reachable from task root flagged" [ "R8" ] fs

(* ---- baseline ratchet over typed findings ---------------------------- *)

let test_typed_baseline_ratchet () =
  let source = "let entry x = Some x" in
  let fs = typed_lint ~config:cfg source in
  check_rules "finding present" [ "R7" ] fs;
  let lines = String.split_on_char '\n' source |> Array.of_list in
  let with_keys =
    List.map
      (fun (f : L.Finding.t) ->
        (f, L.Baseline.key ~source_line:lines.(f.line - 1) f))
      fs
  in
  (* baselined: absorbed, nothing fresh, nothing stale *)
  let baseline = L.Baseline.of_keys (List.map snd with_keys) in
  let fresh, absorbed, stale = L.Baseline.apply baseline with_keys in
  Alcotest.(check int) "fresh" 0 (List.length fresh);
  Alcotest.(check int) "absorbed" 1 absorbed;
  Alcotest.(check int) "stale" 0 (List.length stale);
  (* ratchet: the entry outlives the fix as a stale report *)
  let fresh, absorbed, stale = L.Baseline.apply baseline [] in
  Alcotest.(check int) "fresh after fix" 0 (List.length fresh);
  Alcotest.(check int) "absorbed after fix" 0 absorbed;
  Alcotest.(check int) "stale after fix" 1 (List.length stale)

let () =
  Alcotest.run "midrr-lint-typed"
    [
      ( "r7",
        [
          Alcotest.test_case "closure" `Quick test_r7_closure;
          Alcotest.test_case "tuple" `Quick test_r7_tuple;
          Alcotest.test_case "some" `Quick test_r7_some;
          Alcotest.test_case "partial-app" `Quick test_r7_partial_application;
          Alcotest.test_case "list-build" `Quick test_r7_list_build;
          Alcotest.test_case "boxed-float" `Quick test_r7_boxed_float_return;
          Alcotest.test_case "hidden-one-call-deep" `Quick
            test_r7_hidden_one_call_deep;
          Alcotest.test_case "allow" `Quick test_r7_allow;
          Alcotest.test_case "exempt-type" `Quick test_r7_exempt_type;
          Alcotest.test_case "raise-path-cold" `Quick test_r7_raise_path_cold;
          Alcotest.test_case "unreachable-quiet" `Quick
            test_r7_unreachable_not_scanned;
        ] );
      ( "r8",
        [
          Alcotest.test_case "captured-write" `Quick test_r8_captured_write;
          Alcotest.test_case "hidden-one-call-deep" `Quick
            test_r8_hidden_one_call_deep;
          Alcotest.test_case "transitive-two-deep" `Quick
            test_r8_transitive_two_deep;
          Alcotest.test_case "task-local-ok" `Quick test_r8_task_local_ok;
          Alcotest.test_case "atomic-ok" `Quick test_r8_atomic_ok;
          Alcotest.test_case "serial-write-ok" `Quick test_r8_serial_write_ok;
          Alcotest.test_case "allow" `Quick test_r8_allow;
          Alcotest.test_case "reachable-global-write" `Quick
            test_r8_reachable_global_write;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "typed-ratchet" `Quick
            test_typed_baseline_ratchet;
        ] );
    ]
