type t = { flow : Types.flow_id; size : int; seq : int; arrival : float }

let counter = ref 0

let create ~flow ~size ~arrival =
  if size <= 0 then invalid_arg "Packet.create: size <= 0";
  incr counter;
  { flow; size; seq = !counter; arrival }

let compare_seq a b = compare a.seq b.seq

let pp ppf t =
  Format.fprintf ppf "pkt#%d flow=%d %dB @%.6fs" t.seq t.flow t.size t.arrival
