(** Per-interface weighted fair queueing baseline (start-time fair
    queueing).

    Implements the strategy the paper's introduction analyzes and rejects:
    run WFQ independently on every interface over the flows willing to use
    it.  Each interface keeps its own virtual time and per-flow finish tags;
    the next packet is the one whose flow has the smallest start tag.  On a
    single interface this closely packetizes GPS; across interfaces it
    yields per-interface fair shares, which Figure 1(c) shows violate the
    aggregate max-min allocation (flow a gets 1.5 Mb/s, flow b 0.5 Mb/s).

    Decisions are O(active flows) per packet — fine for a baseline. *)

include Sched_intf.S

val create : ?queue_capacity:int -> unit -> t

val packed : t -> Sched_intf.packed

val virtual_time : t -> Types.iface_id -> float
(** Interface [j]'s virtual clock (normalized bytes). *)

val finish_tag : t -> flow:Types.flow_id -> iface:Types.iface_id -> float
(** Flow [i]'s finish tag at interface [j]; 0 before any service. *)
