(** The fast engine sharded across domains.

    miDRR runs an independent DRR round per interface, with the service
    flag as the only cross-interface coupling — and a flag only ever
    propagates among one flow's own links.  Scheduling state therefore
    decomposes along the connected components of the flow/interface
    preference graph (flows are hyperedges over the interfaces their Π
    row permits): two components never read or write each other's
    state, in either [Plain] or [Service_flags] mode.  This module
    exploits that: it partitions components across [shards] private
    {!Drr_engine} instances and routes every operation to the one shard
    that owns it.

    {b Partition function.}  A union-find over interface ids tracks
    components; registering a flow unions the interfaces its preference
    lists.  A component is bound to a shard at its first flow
    registration — to the least-loaded shard (by homed flows, lowest
    shard id on ties) — and the binding never moves.  When Π is
    block-separable (components map into shards without crossing), the
    sharded engine is {e exactly} the fast engine: same serve
    sequences, deficits, flags, events.  When a registration would
    merge two components already bound to different shards, Π is not
    separable under the current binding: in the default mode the flow
    falls back to a flow-id hash over the candidate shards (and is then
    servable only on the interfaces its home shard owns — a documented
    approximation, counted by {!partition_conflicts}); with
    [~strict:true] the registration raises instead, which is what the
    differential suite runs under.

    Interfaces with no registered flow are kept {e pending} at the
    routing layer (their [Iface_up]/[Iface_down] events are emitted
    from here) and materialize into a shard's sub-engine silently when
    a first flow binds their component, so event streams and ring
    orders match the single-engine run.

    Two ways to drive it:

    - {b Inline} — the full {!Sched_intf.S} implementation below, every
      call routed synchronously on the caller's domain.  This is what
      Netsim/Scenario use ([--engine sharded]); it is the fast engine
      plus an O(1) routing lookup.
    - {b Parallel batch} — {!run_ops} pins each shard to its own domain
      via [Par], feeds them through bounded {!Spsc} mailboxes, and
      merges per-shard event streams back into the canonical
      single-engine order by operation sequence number
      (deterministically and without barriers: each operation touches
      exactly one shard, so sequence numbers never tie across shards).

    Both leave [t] in the same state as a single fast engine that
    applied the same operations in order. *)

type t

include Sched_intf.S with type t := t

val create :
  ?base_quantum:int ->
  ?queue_capacity:int ->
  ?flag_policy:Drr_engine.flag_policy ->
  ?counter_max:int ->
  ?shards:int ->
  ?strict:bool ->
  Drr_engine.mode ->
  t
(** [create mode] builds an empty sharded scheduler; the per-engine
    parameters are those of {!Drr_engine.create}, applied to every
    shard.  [shards] defaults to [1]; [strict] (default [false]) makes
    non-separable registrations raise [Invalid_argument] instead of
    falling back to the flow-id hash. *)

val shards : t -> int
val mode : t -> Drr_engine.mode
val flag_policy : t -> Drr_engine.flag_policy
val counter_max : t -> int
val base_quantum : t -> int

val shard_of_flow : t -> Types.flow_id -> int
(** Home shard of a registered flow; [-1] when unknown. *)

val shard_of_iface : t -> Types.iface_id -> int
(** Shard owning the interface's component; [-1] while unbound/pending. *)

val shard_flow_counts : t -> int array
(** Flows currently homed per shard (length {!shards}). *)

val partition_conflicts : t -> int
(** Registrations that fell back to the flow-id hash because their
    preference spanned components bound to different shards. *)

(** {1 Introspection} — same meaning as the {!Drr_engine} originals,
    routed to the owning shard ({!considered} sums over shards). *)

val deficit : t -> Types.flow_id -> float
val deficit_on : t -> flow:Types.flow_id -> iface:Types.iface_id -> float
val quantum : t -> Types.flow_id -> float
val service_flag : t -> flow:Types.flow_id -> iface:Types.iface_id -> bool
val service_counter : t -> flow:Types.flow_id -> iface:Types.iface_id -> int
val turns : t -> Types.flow_id -> int
val turns_on : t -> flow:Types.flow_id -> iface:Types.iface_id -> int
val ring_flows : t -> Types.iface_id -> Types.flow_id list
val considered : t -> int
val reset_counters : t -> unit
val drops : t -> Types.flow_id -> int

(** {1 Batch operations}

    The parallel driver consumes a prerecorded operation stream — the
    shape the trace generator ({!Midrr_trace}) produces and the bench
    harness replays. *)

type op =
  | Op_add_iface of Types.iface_id
  | Op_remove_iface of Types.iface_id
  | Op_add_flow of {
      flow : Types.flow_id;
      weight : float;
      allowed : Types.iface_id list;
    }
  | Op_remove_flow of Types.flow_id
  | Op_set_weight of { flow : Types.flow_id; weight : float }
  | Op_set_allowed of {
      flow : Types.flow_id;
      allowed : Types.iface_id list;
    }
  | Op_enqueue of { flow : Types.flow_id; size : int; arrival : float }
  | Op_serve of { iface : Types.iface_id; budget : int }
      (** up to [budget] scheduling decisions on [iface], stopping
          early when the interface has nothing to send *)

type run_stats = {
  rs_decisions : int;  (** [next_packet] calls made *)
  rs_sent : int;  (** packets handed out *)
  rs_sent_bytes : int;
  rs_enqueued : int;  (** packets accepted by flow queues *)
  rs_dropped : int;  (** packets refused (unknown flow or full queue) *)
  rs_events : (int * Midrr_obs.Event.t) array;
      (** canonical event stream as [(op sequence number, event)],
          merged across shards into single-engine order; [[||]] unless
          recording was requested *)
}

val apply : t -> op -> unit
(** Apply one operation inline (synchronously, through the same
    routing layer as the {!Sched_intf.S} calls). *)

val run_ops :
  ?record:bool ->
  ?metrics:Midrr_obs.Metrics.t ->
  ?mailbox:int ->
  t ->
  op array ->
  run_stats
(** Apply the whole stream with one domain per shard plus the routing
    domain, communicating over bounded SPSC mailboxes of [mailbox]
    slots (default 8192; full mailboxes backpressure the router — a
    deep ring keeps the pipeline moving even when the OS time-slices
    more domains than it has cores).
    [record] collects every scheduler event with its operation sequence
    number and returns the canonically merged stream.  [metrics] gives
    each shard a private {!Midrr_obs.Busmetrics} fold over its own
    events and folds the per-shard registries into the given one with
    {!Midrr_obs.Metrics.merge_into} after the run — the per-shard
    collector step.  Any sink installed via {!set_sink} is suspended
    for the duration of the run (events cross domains, so a shared
    callback would race) and restored afterwards.

    After [run_ops] returns, [t] is in the same state as if the stream
    had been {!apply}ed inline in order. *)

val run_ops_single :
  ?record:bool ->
  ?metrics:Midrr_obs.Metrics.t ->
  Drr_engine.t ->
  op array ->
  run_stats
(** The single-domain baseline: the same operation stream applied in
    order to one fast engine on the calling domain, with the same
    recording and metrics treatment — what {!run_ops} is differentially
    tested and benchmarked against. *)
