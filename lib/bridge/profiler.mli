(** Scheduling-overhead profiler (paper §6.3 / Figure 9).

    Reproduces the paper's methodology: present the bridge with ~1,000
    packets spread and queued across the flows of [n] interfaces, then
    record the wall-clock time of each scheduling decision with a
    monotonic nanosecond clock.  The paper reports the CDF per interface
    count (4–16) and observes decisions stay under a few microseconds. *)

type target =
  | Decision  (** time [next_packet] alone: the scheduling decision *)
  | Transmit  (** time the full bridge datapath, including header rewrite *)

type result = {
  n_ifaces : int;
  n_flows : int;
  target : target;
  samples_ns : float array;  (** one per timed decision *)
}

val run :
  ?n_flows:int ->
  ?queued_packets:int ->
  ?decisions:int ->
  ?pkt_size:int ->
  ?seed:int ->
  ?target:target ->
  ?sink:(Midrr_obs.Event.t -> unit) ->
  n_ifaces:int ->
  unit ->
  result
(** Build a miDRR instance with [n_ifaces] interfaces and [n_flows]
    (default 32) flows willing to use every interface, keep
    [queued_packets] (default 1000) packets queued across them, and time
    [decisions] (default 20000) scheduling decisions round-robining over
    the interfaces.  Queues are topped up between timed sections.

    [sink], when given, is installed on the scheduler before the timed
    loop, so the measured per-decision cost {e includes} event emission —
    the knob behind the bench harness's observability-overhead numbers. *)

val cdf : result -> Midrr_stats.Cdf.t
(** Empirical CDF of the per-decision time in nanoseconds. *)

val summary : result -> Midrr_stats.Summary.t

val supported_rate_gbps : result -> pkt_size:int -> float
(** The paper's closing conversion: with median decision cost [d] and
    packets of [pkt_size] bytes, the scheduler sustains
    [pkt_size * 8 / d] bits/s. *)
