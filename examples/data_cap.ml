(* Enforcing a data cap next to the scheduler.

   Interface preferences say which networks an app may use; a token bucket
   adds how much of the metered one it may consume over time.  Here a sync
   job may spill onto cellular (so it keeps progressing away from WiFi) but
   its cellular usage is shaped to 500 kb/s with a 2 MB burst, while the
   interactive flow rides unshaped.

   The cap is enforced at the source: the sync job's injector only releases
   a chunk into the cellular-allowed flow when the bucket has tokens;
   everything queued beyond that is routed through a WiFi-only flow.

   Run with: dune exec examples/data_cap.exe *)

open Midrr_core
module Netsim = Midrr_sim.Netsim
module Engine = Midrr_sim.Engine
module Link = Midrr_sim.Link

let wifi = 1
let cellular = 2

let sync_wifi = 0 (* bulk of the sync job: wifi only *)
let sync_cell = 1 (* shaped overflow: may use cellular *)
let voip = 2

let () =
  let sched = Midrr.packed (Midrr.create ()) in
  let sim = Netsim.create ~sched () in
  (* WiFi vanishes for a minute in the middle of the run. *)
  Netsim.add_iface sim wifi
    (Link.steps ~initial:(Types.mbps 10.0)
       [ (60.0, 0.0); (120.0, Types.mbps 10.0) ]);
  Netsim.add_iface sim cellular (Link.constant (Types.mbps 4.0));

  Netsim.add_flow sim sync_wifi ~weight:1.0 ~allowed:[ wifi ]
    (Netsim.Backlogged { pkt_size = 1400 });
  Netsim.add_flow sim voip ~weight:1.0 ~allowed:[ cellular ]
    (Netsim.Cbr { rate = Types.kbps 64.0; pkt_size = 200; stop = None });

  (* The shaped overflow flow is fed manually through a token bucket:
     500 kb/s = 62500 B/s sustained, 2 MB burst. *)
  Netsim.add_flow sim sync_cell ~weight:1.0 ~allowed:[ cellular ]
    (Netsim.Cbr { rate = 1.0; pkt_size = 1400; stop = Some 0.0 })
  (* dormant source: we inject below *);
  let bucket = Tokenbucket.create ~rate:62500.0 ~burst:2_000_000.0 in
  let engine = Netsim.engine sim in
  let chunk = 1400 in
  let rec feeder () =
    let now = Engine.now engine in
    if now < 180.0 then
      if Tokenbucket.try_consume bucket ~now ~bytes:chunk then begin
        ignore
          (Sched_intf.Packed.enqueue sched
             (Packet.create ~flow:sync_cell ~size:chunk ~arrival:now));
        (* Pace injections at the shaped rate. *)
        Engine.schedule_in engine ~after:(Float.of_int chunk /. 62500.0) feeder
      end
      else
        Engine.schedule_in engine
          ~after:(Tokenbucket.time_until bucket ~now ~bytes:chunk)
          feeder
  in
  Netsim.at sim 0.0 feeder;

  Netsim.run sim ~until:180.0;
  let report label f t0 t1 =
    Format.printf "  %-24s %6.3f Mb/s@." label (Netsim.avg_rate sim f ~t0 ~t1)
  in
  Format.printf "WiFi up (0-60s):@.";
  report "sync on wifi" sync_wifi 5.0 59.0;
  report "sync overflow (capped)" sync_cell 5.0 59.0;
  report "voip" voip 5.0 59.0;
  Format.printf "WiFi outage (60-120s): sync continues only via the cap@.";
  report "sync on wifi" sync_wifi 61.0 119.0;
  report "sync overflow (capped)" sync_cell 61.0 119.0;
  report "voip" voip 61.0 119.0;
  Format.printf
    "@.Cellular spend of the sync job: %.2f MB over 3 minutes (cap: 0.5 \
     Mb/s + 2 MB burst)@."
    (Float.of_int (Netsim.served_cell sim ~flow:sync_cell ~iface:cellular)
    /. 1e6)
