(* Tests for the Domain-based parallel executor (lib/par) and the sweep
   layer built on it.

   The load-bearing property is determinism: results merge positionally,
   so everything derived from a [Par.run] — a sweep's rendered reports,
   a captured event trace — must be byte-identical whatever [jobs] is.
   The pool-mechanics cases (empty input, jobs > tasks, exception
   propagation) pin the executor's edge behavior. *)

module Par = Midrr_par.Par

(* --- pool mechanics ----------------------------------------------------- *)

let test_empty () =
  Alcotest.(check int) "no tasks" 0 (Array.length (Par.run [||]));
  Alcotest.(check int) "no tasks, explicit jobs" 0
    (Array.length (Par.run ~jobs:4 [||]))

let test_order () =
  let n = 37 in
  let expected = Array.init n (fun i -> i * i) in
  (* jobs = 64 > tasks exercises the clamp; jobs = 1 the serial path. *)
  List.iter
    (fun jobs ->
      let results = Par.run ~jobs (Array.init n (fun i () -> i * i)) in
      Alcotest.(check (array int))
        (Printf.sprintf "task-order results at jobs=%d" jobs)
        expected results)
    [ 1; 2; 4; 64 ]

let test_map () =
  Alcotest.(check (array int))
    "map" [| 2; 4; 6 |]
    (Par.map ~jobs:2 (fun x -> 2 * x) [| 1; 2; 3 |])

exception Boom of int

let test_exception () =
  let ran = Array.make 8 false in
  let tasks =
    Array.init 8 (fun i () ->
        ran.(i) <- true;
        if i = 2 || i = 5 then raise (Boom i))
  in
  (match Par.run ~jobs:3 tasks with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom i ->
      Alcotest.(check int) "lowest-indexed failure surfaces" 2 i);
  Alcotest.(check bool) "every task still ran" true (Array.for_all Fun.id ran)

let test_split_seeds () =
  let a = Par.split_seeds ~seed:7 8 in
  Alcotest.(check (array int))
    "reproducible" a (Par.split_seeds ~seed:7 8);
  Alcotest.(check (array int))
    "prefix-stable across n"
    (Array.sub a 0 3)
    (Par.split_seeds ~seed:7 3);
  Alcotest.(check bool) "master-seed sensitive" false
    (a = Par.split_seeds ~seed:8 8);
  Alcotest.(check int) "n=0" 0 (Array.length (Par.split_seeds ~seed:7 0));
  let distinct = List.sort_uniq compare (Array.to_list a) in
  Alcotest.(check int) "substreams distinct" 8 (List.length distinct)

(* --- sweep determinism --------------------------------------------------- *)

let scenario_path = "../scenarios/fig6.scn"

let fig6 () =
  let text = In_channel.with_open_text scenario_path In_channel.input_all in
  match Midrr_sim.Scenario.parse text with
  | Ok s -> s
  | Error e -> Alcotest.failf "fig6 scenario: %s" e

let test_sweep_jobs_identical () =
  let scenarios = [ ("fig6", fig6 ()) ] in
  let seeds = Array.to_list (Par.split_seeds ~seed:42 3) in
  let engines =
    [ Midrr_sim.Scenario.Engine_fast; Midrr_sim.Scenario.Engine_ref ]
  in
  let render jobs =
    Midrr_sim.Sweep.render
      (Midrr_sim.Sweep.run ~jobs ~scenarios ~seeds ~engines ())
  in
  let base = render 1 in
  Alcotest.(check bool) "sweep renders something" true (String.length base > 0);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d output identical to jobs=1" jobs)
        base (render jobs))
    [ 2; 4 ]

(* The fig6 event trace — the golden-trace observable — captured by
   concurrent domains each running its own simulation must equal the
   serial capture byte for byte. *)
let test_trace_parallel_identical () =
  let scenario = fig6 () in
  let capture () =
    let buf = Buffer.create 65536 in
    let count = ref 0 in
    let sink ~time ev =
      if !count < 5_000 then begin
        Buffer.add_string buf (Midrr_obs.Jsonl.to_string ~time ev);
        Buffer.add_char buf '\n';
        incr count
      end
    in
    ignore (Midrr_sim.Scenario.run ~sink ~engine:Midrr_sim.Scenario.Engine_fast
              scenario);
    Buffer.contents buf
  in
  let serial = capture () in
  Alcotest.(check bool) "trace non-empty" true (String.length serial > 0);
  let parallel = Par.run ~jobs:4 (Array.make 4 capture) in
  Array.iteri
    (fun i trace ->
      Alcotest.(check bool)
        (Printf.sprintf "parallel capture %d matches serial" i)
        true
        (String.equal serial trace))
    parallel

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "empty task array" `Quick test_empty;
          Alcotest.test_case "results in task order, jobs clamped" `Quick
            test_order;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "exception propagates, pool drains" `Quick
            test_exception;
          Alcotest.test_case "split_seeds" `Quick test_split_seeds;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sweep identical at jobs 1/2/4" `Slow
            test_sweep_jobs_identical;
          Alcotest.test_case "fig6 trace identical under parallel capture"
            `Slow test_trace_parallel_identical;
        ] );
    ]
